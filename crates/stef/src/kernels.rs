//! The memoized MTTKRP kernels (paper §III-B, Algorithms 4–8).
//!
//! Two passes cover all modes of the CSF:
//!
//! * [`mode0_with`] — the downward/upward traversal that computes the
//!   root-mode MTTKRP `Ā⁽⁰⁾` *and* stores every flagged partial result
//!   `P^(i)` on the way (TTM followed by a chain of mTTV operations,
//!   Fig. 1a). Output rows are owned per thread; the ≤ 2 boundary rows
//!   per thread are updated atomically (Algorithm 4, lines 8–12).
//! * [`modeu_with`] — MTTKRP for a non-root level `u`. The traversal
//!   builds the Khatri–Rao row `k_{u-1}` going down (Algorithm 5, line 7)
//!   and at each level-`u` node obtains `t_u` either from the memoized
//!   `P^(u)` (Fig. 1b / Algorithm 6), by recomputing from a deeper saved
//!   level (Fig. 1c / Algorithm 7), or from scratch (Fig. 1d /
//!   Algorithm 8) — whichever the save flags make possible. The leaf
//!   level needs no `t`: it scatters `val · k_{d-2}` directly (the KRP
//!   form of Algorithm 5, line 14).
//!
//! Both passes run one task per *logical thread* of the [`Schedule`];
//! the schedule — not the physical worker pool — defines who owns what,
//! so results are identical for any physical core count.
//!
//! ## Execution strategy
//!
//! This is the hot path of every ALS iteration, engineered for zero
//! steady-state overhead:
//!
//! * **No heap allocation inside a pass.** All scratch rows, traversal
//!   cursors and privatized output copies live in an engine-owned
//!   [`Workspace`]; the passes only slice into its arenas. (The
//!   [`mode0_pass`]/[`modeu_pass`] convenience wrappers build a
//!   throw-away workspace per call for baselines and tests — the engine
//!   never goes through them.)
//! * **Monomorphized emitters.** The output update is a generic
//!   [`Emitter`] parameter — one fully inlined instantiation per
//!   accumulation strategy — instead of the former `&mut dyn FnMut`
//!   indirect call per emitted row. The atomic emitter fuses each
//!   contribution straight into its CAS sweep (no scratch `upd` row),
//!   and both emitters expose a prefetch hint the scatter loops issue
//!   a few non-zeros ahead.
//! * **Iterative traversal.** The recursive `walk_down`/`walk_u` pair
//!   became explicit-stack loops over per-level `cur`/`end` cursors,
//!   with the two hottest shapes special-cased: leaf fibers collapse
//!   into one `axpy_fiber` gather whose accumulator block stays in
//!   registers across the run (and which prefetches upcoming factor
//!   rows), memoized children into a run of `hadamard_row`;
//!   single-leaf fibers fuse into one `krp_axpy`.
//! * **Deterministic parallel reduction.** Privatized outputs are
//!   reduced chunk-parallel over the flat `n_u·R` range, each element
//!   summed in logical-thread order — bit-identical to the old serial
//!   reduction, without its `O(T·n_u·R)` single-core cost.
//!
//! All arithmetic orderings match the legacy kernels exactly (see
//! `kernels_legacy.rs`). Both paths use the same row primitives
//! (`linalg::simd`), so for any one dispatch variant the two produce
//! bit-identical results — a property the differential tests pin for
//! every variant the CPU can run.
//!
//! ## SIMD dispatch
//!
//! The traversal bodies are generic over [`RowKernels`] — a zero-sized
//! token naming one concrete kernel set — and are entered through a
//! small per-thread dispatch on [`linalg::simd::active`]. The AVX2
//! instantiations sit behind `#[target_feature(enable = "avx2,fma")]`
//! wrappers, which is what lets the explicit-SIMD primitives inline
//! into the scatter loops: dispatch happens once per pass per thread,
//! not once per emitted row.

use crate::partials::PartialStore;
use crate::runtime::Executor;
use crate::schedule::Schedule;
use crate::sync::{SharedRows, SharedSlice};
use crate::workspace::Workspace;
use linalg::simd::{self, RowKernels};
use linalg::Mat;
use sptensor::Csf;

/// How many output rows ahead the scatter loops issue a prefetch hint.
/// Far enough to cover an L2 miss at typical per-row work, near enough
/// that the line is still resident when the row is touched.
const SCATTER_PREFETCH: usize = 4;

/// Everything a kernel invocation needs, borrowed for its duration.
pub struct KernelCtx<'a> {
    /// The tensor.
    pub csf: &'a Csf,
    /// Work distribution (same object for producer and consumer passes).
    pub sched: &'a Schedule,
    /// Factor matrices in *level* order: `factors[l]` corresponds to
    /// `csf.mode_order()[l]`.
    pub factors: Vec<&'a Mat>,
    /// Rank `R`.
    pub rank: usize,
}

impl<'a> KernelCtx<'a> {
    /// Builds a context, checking factor shapes against the CSF.
    pub fn new(csf: &'a Csf, sched: &'a Schedule, factors: Vec<&'a Mat>, rank: usize) -> Self {
        assert_eq!(factors.len(), csf.ndim(), "one factor per level");
        for (l, f) in factors.iter().enumerate() {
            assert_eq!(
                f.rows(),
                csf.level_dims()[l],
                "factor at level {l} has wrong row count"
            );
            assert_eq!(f.cols(), rank, "factor at level {l} has wrong rank");
        }
        KernelCtx {
            csf,
            sched,
            factors,
            rank,
        }
    }
}

/// Resolved output-conflict strategy for non-root modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolvedAccum {
    /// One output matrix per logical thread, reduced in thread order.
    Privatized,
    /// One shared output, every update an atomic add.
    Atomic,
}

// ---------------------------------------------------------------------
// Emitters
// ---------------------------------------------------------------------

/// How a level-`u` contribution reaches the output matrix. Generic so
/// each accumulation strategy gets its own fully inlined kernel body.
/// The row-kernel token rides along per call so the privatized emitter
/// uses the same monomorphized primitives as the traversal around it.
/// Shared with the linearized kernels (`kernels_alto`), which emit
/// through the same strategies.
pub(crate) trait Emitter {
    /// `out[fid] += a ⊙ b`.
    fn product<K: RowKernels>(&mut self, k: K, fid: usize, a: &[f64], b: &[f64]);
    /// `out[fid] += s · x`.
    fn scaled<K: RowKernels>(&mut self, k: K, fid: usize, s: f64, x: &[f64]);
    /// Hints that `out[fid]` will be emitted to shortly. Advisory.
    fn prefetch(&self, fid: usize);
}

/// Writes into this thread's private copy of the output — plain fused
/// row updates, no intermediate `upd` row needed.
pub(crate) struct PrivEmitter<'a> {
    pub(crate) local: &'a mut [f64],
    pub(crate) r: usize,
}

impl Emitter for PrivEmitter<'_> {
    #[inline(always)]
    fn product<K: RowKernels>(&mut self, k: K, fid: usize, a: &[f64], b: &[f64]) {
        let base = fid * self.r;
        k.hadamard_row(&mut self.local[base..base + self.r], a, b);
    }

    #[inline(always)]
    fn scaled<K: RowKernels>(&mut self, k: K, fid: usize, s: f64, x: &[f64]) {
        let base = fid * self.r;
        k.axpy_row(&mut self.local[base..base + self.r], s, x);
    }

    #[inline(always)]
    fn prefetch(&self, fid: usize) {
        linalg::simd::prefetch_read(&self.local[fid * self.r]);
    }
}

/// Streams each contribution straight into the shared output's CAS
/// sweep — the fused form of the old build-`upd`-then-`atomic_add_row`
/// sequence, which paid a full scratch-row write *and* read-back per
/// emitted row. The fused adds round identically (one multiply per
/// element either way), so results are bit-for-bit the same.
pub(crate) struct AtomicEmitter<'a, 'b> {
    pub(crate) shared: &'a SharedRows<'b>,
}

impl Emitter for AtomicEmitter<'_, '_> {
    #[inline(always)]
    fn product<K: RowKernels>(&mut self, _k: K, fid: usize, a: &[f64], b: &[f64]) {
        self.shared.atomic_add_product_row(fid, a, b);
    }

    #[inline(always)]
    fn scaled<K: RowKernels>(&mut self, _k: K, fid: usize, s: f64, x: &[f64]) {
        self.shared.atomic_add_scaled_row(fid, s, x);
    }

    #[inline(always)]
    fn prefetch(&self, fid: usize) {
        self.shared.prefetch_row(fid);
    }
}

// ---------------------------------------------------------------------
// Mode-0 pass
// ---------------------------------------------------------------------

/// Computes `Ā⁽⁰⁾` and stores all partials flagged in `views`, using the
/// caller's workspace and fanning out on `rt`. `out` must be
/// `level_dims[0] × R`; it is zeroed here. Allocation-free once `ws` is
/// warm (the pool runtime dispatches without touching the allocator).
#[derive(Clone, Copy)]
enum KernelPassKind {
    Mode0,
    ModeuSaved,
    ModeuRecompute,
}

/// Count one MTTKRP kernel entry in the metrics registry. The handle
/// per kind is resolved once (the registration lock + allocation land
/// on the first pass — warm-up territory); every later pass is a single
/// relaxed `fetch_add`, keeping warm sweeps allocation-free.
#[inline]
fn kernel_pass(kind: KernelPassKind) {
    use std::sync::OnceLock;
    const NAME: &str = "stef_kernel_passes_total";
    const HELP: &str = "MTTKRP kernel entries by variant (root, saved-partials, recompute)";
    static MODE0: OnceLock<&'static crate::metrics::Counter> = OnceLock::new();
    static SAVED: OnceLock<&'static crate::metrics::Counter> = OnceLock::new();
    static RECOMPUTE: OnceLock<&'static crate::metrics::Counter> = OnceLock::new();
    match kind {
        KernelPassKind::Mode0 => MODE0
            .get_or_init(|| crate::metrics::counter(NAME, HELP, &[("kernel", "mode0")]))
            .inc(),
        KernelPassKind::ModeuSaved => SAVED
            .get_or_init(|| crate::metrics::counter(NAME, HELP, &[("kernel", "modeu_saved")]))
            .inc(),
        KernelPassKind::ModeuRecompute => RECOMPUTE
            .get_or_init(|| {
                crate::metrics::counter(NAME, HELP, &[("kernel", "modeu_recompute")])
            })
            .inc(),
    }
}

pub fn mode0_with(
    ctx: &KernelCtx<'_>,
    views: &[Option<SharedRows<'_>>],
    rt: &Executor,
    ws: &mut Workspace,
    out: &mut Mat,
) {
    let d = ctx.csf.ndim();
    let r = ctx.rank;
    assert!(d >= 2, "tensors have at least 2 modes");
    assert_eq!(views.len(), d);
    assert_eq!(out.rows(), ctx.csf.level_dims()[0]);
    assert_eq!(out.cols(), r);
    kernel_pass(KernelPassKind::Mode0);
    let nthreads = ctx.sched.nthreads();
    ws.ensure(d, r, nthreads, 0);
    out.fill_zero();

    let parts = ws.parts();
    let (rs, astride, sstride) = (parts.row_stride, parts.arena_stride, parts.stack_stride);
    let arena = SharedSlice::new(&mut parts.scratch[..nthreads * astride]);
    let stackmem = SharedSlice::new(&mut parts.stacks[..nthreads * sstride]);
    let out_shared = SharedRows::new(out.as_mut_slice(), r);

    rt.fanout(nthreads, |th| {
        // SAFETY: each logical thread touches only its own arena span.
        let scr = unsafe { arena.range_mut(th * astride, (th + 1) * astride) };
        let stk = unsafe { stackmem.range_mut(th * sstride, (th + 1) * sstride) };
        // Layout: `d` KRP rows (unused here), `d` accumulator rows.
        let tbuf = &mut scr[d * rs..2 * d * rs];
        let (cur, end) = stk.split_at_mut(d);
        // One ISA dispatch per thread; everything below it is
        // monomorphized over the kernel set.
        match simd::active() {
            #[cfg(target_arch = "x86_64")]
            simd::SimdPath::Avx2 => {
                // SAFETY: `active()` never selects an unavailable path.
                unsafe { mode0_thread_avx2(ctx, th, views, &out_shared, tbuf, rs, cur, end) }
            }
            #[cfg(target_arch = "aarch64")]
            simd::SimdPath::Neon => {
                mode0_thread(simd::NeonK, ctx, th, views, &out_shared, tbuf, rs, cur, end)
            }
            _ => mode0_thread(simd::ScalarK, ctx, th, views, &out_shared, tbuf, rs, cur, end),
        }
    });
}

/// The AVX2 instantiation of [`mode0_thread`]. The `#[target_feature]`
/// region is what lets the AVX2 row primitives inline into the
/// traversal — a `#[target_feature]` function only inlines into
/// callers that already guarantee its features.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn mode0_thread_avx2(
    ctx: &KernelCtx<'_>,
    th: usize,
    views: &[Option<SharedRows<'_>>],
    out_shared: &SharedRows<'_>,
    tbuf: &mut [f64],
    rs: usize,
    cur: &mut [usize],
    end: &mut [usize],
) {
    // SAFETY: the caller dispatched on an available Avx2 path.
    let k = unsafe { simd::Avx2K::new_unchecked() };
    mode0_thread(k, ctx, th, views, out_shared, tbuf, rs, cur, end)
}

/// One logical thread's share of the mode-0 pass, monomorphized over
/// the SIMD kernel set.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn mode0_thread<K: RowKernels>(
    k: K,
    ctx: &KernelCtx<'_>,
    th: usize,
    views: &[Option<SharedRows<'_>>],
    out_shared: &SharedRows<'_>,
    tbuf: &mut [f64],
    rs: usize,
    cur: &mut [usize],
    end: &mut [usize],
) {
    let r = ctx.rank;
    let root_fids = ctx.csf.fids(0);
    let (rlo, rhi) = ctx.sched.root_range(th);
    for idx0 in rlo..rhi {
        subtree_down(k, ctx, th, idx0, views, tbuf, rs, cur, end);
        let fid = root_fids[idx0] as usize;
        if ctx.sched.is_boundary(th, 0, idx0) {
            // Possibly shared with a neighbour: atomic accumulate.
            out_shared.atomic_add_row(fid, &tbuf[..r]);
        } else {
            // SAFETY: a non-boundary root node — and hence its output
            // row, since root fids are unique — is owned by exactly
            // this thread.
            unsafe { out_shared.row_mut(fid) }.copy_from_slice(&tbuf[..r]);
        }
    }
}

/// Computes the (thread-clamped) subtree contribution of root node
/// `idx0` into `tbuf[0..r]` (overwriting it), storing flagged partials
/// on the way up — the explicit-stack form of the old recursive
/// `walk_down`.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn subtree_down<K: RowKernels>(
    k: K,
    ctx: &KernelCtx<'_>,
    th: usize,
    idx0: usize,
    views: &[Option<SharedRows<'_>>],
    tbuf: &mut [f64],
    rs: usize,
    cur: &mut [usize],
    end: &mut [usize],
) {
    let d = ctx.csf.ndim();
    let r = ctx.rank;
    let csf = ctx.csf;
    let sched = ctx.sched;
    let vals = csf.vals();
    if d == 2 {
        // Root children are leaves: one fused streaming gather — the
        // output row stays in registers across the whole non-zero run,
        // starting from +0.0 (no zero-fill round trip).
        let (lo, hi) = child_range(csf, 1, idx0);
        let (clo, chi) = sched.clamp(th, 1, lo, hi);
        let fids = csf.fids(1);
        let leaf = ctx.factors[1];
        let t0 = &mut tbuf[..r];
        k.gather_fiber(t0, &vals[clo..chi], &fids[clo..chi], leaf.as_slice(), leaf.cols());
        return;
    }
    tbuf[..r].fill(0.0);
    let mut level = 1usize;
    {
        let (lo, hi) = child_range(csf, 1, idx0);
        let (clo, chi) = sched.clamp(th, 1, lo, hi);
        cur[1] = clo;
        end[1] = chi;
    }
    loop {
        if cur[level] < end[level] {
            let idx = cur[level];
            if level == d - 2 {
                // This node's children are leaves: open + close inline.
                let (lo, hi) = child_range(csf, d - 1, idx);
                let (clo, chi) = sched.clamp(th, d - 1, lo, hi);
                let frow = ctx.factors[level].row(csf.fids(level)[idx] as usize);
                let leaf_fids = csf.fids(d - 1);
                let leaf = ctx.factors[d - 1];
                let (thead, ttail) = tbuf.split_at_mut(level * rs);
                let tprev = &mut thead[(level - 1) * rs..(level - 1) * rs + r];
                if chi - clo == 1 && views[level].is_none() {
                    // Single leaf and nothing to memoize: fuse the zero +
                    // axpy + hadamard triple into one krp_axpy.
                    k.krp_axpy(tprev, vals[clo], leaf.row(leaf_fids[clo] as usize), frow);
                } else {
                    let tl = &mut ttail[..r];
                    k.gather_fiber(
                        tl,
                        &vals[clo..chi],
                        &leaf_fids[clo..chi],
                        leaf.as_slice(),
                        leaf.cols(),
                    );
                    if let Some(view) = &views[level] {
                        // SAFETY: shift-by-thread-id makes row `idx + th`
                        // exclusively this thread's (see partials.rs).
                        unsafe { view.row_mut(idx + th) }.copy_from_slice(tl);
                    }
                    k.hadamard_row(tprev, tl, frow);
                }
                cur[level] += 1;
            } else {
                // Internal node: zero its accumulator and descend.
                tbuf[level * rs..level * rs + r].fill(0.0);
                let (lo, hi) = child_range(csf, level + 1, idx);
                let (clo, chi) = sched.clamp(th, level + 1, lo, hi);
                level += 1;
                cur[level] = clo;
                end[level] = chi;
            }
        } else {
            // All children of the open node one level up are done.
            level -= 1;
            if level == 0 {
                return;
            }
            let idx = cur[level];
            if let Some(view) = &views[level] {
                // SAFETY: see above.
                unsafe { view.row_mut(idx + th) }
                    .copy_from_slice(&tbuf[level * rs..level * rs + r]);
            }
            let frow = ctx.factors[level].row(csf.fids(level)[idx] as usize);
            let (thead, ttail) = tbuf.split_at_mut(level * rs);
            k.hadamard_row(
                &mut thead[(level - 1) * rs..(level - 1) * rs + r],
                &ttail[..r],
                frow,
            );
            cur[level] += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Mode-u pass (u > 0)
// ---------------------------------------------------------------------

/// Computes `Ā⁽ᵘ⁾` for a non-root level `u` into `out` (`level_dims[u] ×
/// R`), using memoized partials where available (`use_saved`), the
/// caller's workspace, and `rt` for the fan-outs. Allocation-free once
/// `ws` is warm.
#[allow(clippy::too_many_arguments)]
pub fn modeu_with(
    ctx: &KernelCtx<'_>,
    views: &[Option<SharedRows<'_>>],
    use_saved: bool,
    u: usize,
    accum: ResolvedAccum,
    rt: &Executor,
    ws: &mut Workspace,
    out: &mut Mat,
) {
    let d = ctx.csf.ndim();
    assert!(u >= 1 && u < d, "mode0 handles the root level");
    assert_eq!(views.len(), d);
    kernel_pass(if use_saved {
        KernelPassKind::ModeuSaved
    } else {
        KernelPassKind::ModeuRecompute
    });
    let r = ctx.rank;
    let n_u = ctx.csf.level_dims()[u];
    assert_eq!(out.rows(), n_u);
    assert_eq!(out.cols(), r);
    let nthreads = ctx.sched.nthreads();
    let priv_rows = if accum == ResolvedAccum::Privatized {
        n_u
    } else {
        0
    };
    ws.ensure(d, r, nthreads, priv_rows);

    let parts = ws.parts();
    let (rs, astride, sstride) = (parts.row_stride, parts.arena_stride, parts.stack_stride);
    let arena = SharedSlice::new(&mut parts.scratch[..nthreads * astride]);
    let stackmem = SharedSlice::new(&mut parts.stacks[..nthreads * sstride]);

    match accum {
        ResolvedAccum::Privatized => {
            let pstride = parts.priv_stride;
            if rt.is_serial() {
                // A serial executor runs logical threads in order —
                // which is exactly the reduction's element-wise thread
                // order. Thread 0 emits straight into `out` (`out = p0`,
                // bit for bit), every later thread reuses one scratch
                // copy that is folded in before the next starts
                // (`out = (…(p0 + p1) + …) + pt`). Same sums in the
                // same order as the chunk-parallel reduction below, at
                // a live working set of two copies instead of
                // `nthreads` — the copies stay cache-resident instead
                // of thrashing each other out.
                out.fill_zero();
                let flat = SharedSlice::new(out.as_mut_slice());
                let pool = SharedSlice::new(&mut parts.priv_buf[..pstride]);
                rt.fanout(nthreads, |th| {
                    // SAFETY: per-thread arena spans are disjoint; the
                    // output and the single scratch copy are shared
                    // across logical threads, but the serial executor
                    // runs them sequentially, so no two `&mut` borrows
                    // are live at once.
                    let scr = unsafe { arena.range_mut(th * astride, (th + 1) * astride) };
                    let stk = unsafe { stackmem.range_mut(th * sstride, (th + 1) * sstride) };
                    if th == 0 {
                        let local = unsafe { flat.range_mut(0, n_u * r) };
                        let mut em = PrivEmitter { local, r };
                        modeu_thread(ctx, th, u, use_saved, views, &mut scr[..2 * d * rs], stk, rs, &mut em);
                    } else {
                        let local = unsafe { pool.range_mut(0, n_u * r) };
                        local.fill(0.0);
                        let mut em = PrivEmitter { local, r };
                        modeu_thread(ctx, th, u, use_saved, views, &mut scr[..2 * d * rs], stk, rs, &mut em);
                        let dst = unsafe { flat.range_mut(0, n_u * r) };
                        let src = unsafe { pool.range(0, n_u * r) };
                        for (o, &v) in dst.iter_mut().zip(src) {
                            *o += v;
                        }
                    }
                });
                return;
            }
            let pool = SharedSlice::new(&mut parts.priv_buf[..nthreads * pstride]);
            rt.fanout(nthreads, |th| {
                // SAFETY: per-thread spans are disjoint by construction.
                let scr = unsafe { arena.range_mut(th * astride, (th + 1) * astride) };
                let stk = unsafe { stackmem.range_mut(th * sstride, (th + 1) * sstride) };
                let local = unsafe { pool.range_mut(th * pstride, th * pstride + n_u * r) };
                local.fill(0.0);
                let mut em = PrivEmitter { local, r };
                modeu_thread(ctx, th, u, use_saved, views, &mut scr[..2 * d * rs], stk, rs, &mut em);
            });
            // Cooperative cancellation boundary: if the token fired
            // during the emit pass, part of the private pool was never
            // written — skip the reduction; the caller abandons the
            // output as soon as it observes the token.
            if rt.cancelled() {
                return;
            }
            // Chunk-parallel reduction over the flat n_u·R range; each
            // element sums its private copies in logical-thread order, so
            // the result is bit-identical to a serial thread-order
            // reduction for every worker count.
            let total = n_u * r;
            let out_slice = SharedSlice::new(out.as_mut_slice());
            rt.fanout(nthreads, |w| {
                let lo = w * total / nthreads;
                let hi = (w + 1) * total / nthreads;
                // SAFETY: chunks [lo, hi) are disjoint across workers;
                // the private pool is only read after the emit fanout
                // joined.
                let dst = unsafe { out_slice.range_mut(lo, hi) };
                dst.copy_from_slice(unsafe { pool.range(lo, hi) });
                for t in 1..nthreads {
                    let src = unsafe { pool.range(t * pstride + lo, t * pstride + hi) };
                    for (o, &v) in dst.iter_mut().zip(src) {
                        *o += v;
                    }
                }
            });
        }
        ResolvedAccum::Atomic => {
            out.fill_zero();
            if rt.is_serial() {
                // A serial executor runs logical threads one after
                // another, so the CAS sweeps' only job — surviving
                // concurrent writers — is moot: plain fused row adds
                // perform the same additions in the same order, bit
                // for bit, at a fraction of the cost (a compare-and-
                // swap per element becomes one load/fma/store).
                let flat = SharedSlice::new(out.as_mut_slice());
                rt.fanout(nthreads, |th| {
                    // SAFETY: per-thread arena spans are disjoint. The
                    // output range is shared across logical threads,
                    // but the serial executor runs them sequentially,
                    // so no two `&mut` borrows of it are live at once.
                    let scr = unsafe { arena.range_mut(th * astride, (th + 1) * astride) };
                    let stk = unsafe { stackmem.range_mut(th * sstride, (th + 1) * sstride) };
                    let local = unsafe { flat.range_mut(0, n_u * r) };
                    let mut em = PrivEmitter { local, r };
                    modeu_thread(ctx, th, u, use_saved, views, &mut scr[..2 * d * rs], stk, rs, &mut em);
                });
            } else {
                let shared = SharedRows::new(out.as_mut_slice(), r);
                rt.fanout(nthreads, |th| {
                    // SAFETY: per-thread spans are disjoint by construction.
                    let scr = unsafe { arena.range_mut(th * astride, (th + 1) * astride) };
                    let stk = unsafe { stackmem.range_mut(th * sstride, (th + 1) * sstride) };
                    let mut em = AtomicEmitter { shared: &shared };
                    modeu_thread(ctx, th, u, use_saved, views, &mut scr[..2 * d * rs], stk, rs, &mut em);
                });
            }
        }
    }
}

/// One logical thread's mode-`u` traversal: one ISA dispatch, then the
/// body monomorphized over both the emitter and the kernel set.
#[allow(clippy::too_many_arguments)]
fn modeu_thread<E: Emitter>(
    ctx: &KernelCtx<'_>,
    th: usize,
    u: usize,
    use_saved: bool,
    views: &[Option<SharedRows<'_>>],
    scr: &mut [f64],
    stk: &mut [usize],
    rs: usize,
    em: &mut E,
) {
    match simd::active() {
        #[cfg(target_arch = "x86_64")]
        simd::SimdPath::Avx2 => {
            // SAFETY: `active()` never selects an unavailable path.
            unsafe { modeu_thread_avx2(ctx, th, u, use_saved, views, scr, stk, rs, em) }
        }
        #[cfg(target_arch = "aarch64")]
        simd::SimdPath::Neon => {
            modeu_thread_body(simd::NeonK, ctx, th, u, use_saved, views, scr, stk, rs, em)
        }
        _ => modeu_thread_body(simd::ScalarK, ctx, th, u, use_saved, views, scr, stk, rs, em),
    }
}

/// The AVX2 instantiation of [`modeu_thread_body`]; see
/// [`mode0_thread_avx2`] for why the `#[target_feature]` region matters.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn modeu_thread_avx2<E: Emitter>(
    ctx: &KernelCtx<'_>,
    th: usize,
    u: usize,
    use_saved: bool,
    views: &[Option<SharedRows<'_>>],
    scr: &mut [f64],
    stk: &mut [usize],
    rs: usize,
    em: &mut E,
) {
    // SAFETY: the caller dispatched on an available Avx2 path.
    let k = unsafe { simd::Avx2K::new_unchecked() };
    modeu_thread_body(k, ctx, th, u, use_saved, views, scr, stk, rs, em)
}

/// The explicit-stack form of the old recursive `walk_u`.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn modeu_thread_body<K: RowKernels, E: Emitter>(
    k: K,
    ctx: &KernelCtx<'_>,
    th: usize,
    u: usize,
    use_saved: bool,
    views: &[Option<SharedRows<'_>>],
    scr: &mut [f64],
    stk: &mut [usize],
    rs: usize,
    em: &mut E,
) {
    let d = ctx.csf.ndim();
    let r = ctx.rank;
    let csf = ctx.csf;
    let sched = ctx.sched;
    let (kbuf, tbuf) = scr.split_at_mut(d * rs);
    let (cur, end) = stk.split_at_mut(d);
    let root_fids = csf.fids(0);
    let (rlo, rhi) = sched.root_range(th);
    for idx0 in rlo..rhi {
        let fid0 = root_fids[idx0] as usize;
        kbuf[..r].copy_from_slice(ctx.factors[0].row(fid0));
        let (lo, hi) = child_range(csf, 1, idx0);
        let (clo, chi) = sched.clamp(th, 1, lo, hi);
        if u == 1 {
            let kprev = &kbuf[..r];
            process_at_u(k, ctx, th, u, clo, chi, use_saved, views, kprev, tbuf, rs, cur, end, em);
            continue;
        }
        let mut level = 1usize;
        cur[1] = clo;
        end[1] = chi;
        loop {
            if level == u {
                let kprev = &kbuf[(u - 1) * rs..(u - 1) * rs + r];
                process_at_u(
                    k, ctx, th, u, cur[u], end[u], use_saved, views, kprev, tbuf, rs, cur, end, em,
                );
                // Pop to the deepest level with an unvisited sibling.
                loop {
                    level -= 1;
                    if level == 0 || cur[level] < end[level] {
                        break;
                    }
                }
                if level == 0 {
                    break;
                }
                continue;
            }
            if cur[level] < end[level] {
                let idx = cur[level];
                cur[level] += 1;
                // Extend the KRP row: k_level = k_{level-1} ⊙ A⁽ˡ⁾[fid,:].
                let frow = ctx.factors[level].row(csf.fids(level)[idx] as usize);
                let (kh, kt) = kbuf.split_at_mut(level * rs);
                k.krp_row(&mut kt[..r], &kh[(level - 1) * rs..(level - 1) * rs + r], frow);
                let (lo, hi) = child_range(csf, level + 1, idx);
                let (clo, chi) = sched.clamp(th, level + 1, lo, hi);
                level += 1;
                cur[level] = clo;
                end[level] = chi;
            } else {
                loop {
                    level -= 1;
                    if level == 0 || cur[level] < end[level] {
                        break;
                    }
                }
                if level == 0 {
                    break;
                }
            }
        }
    }
}

/// Processes the clamped node range `[clo, chi)` at the output level
/// `u`: a tight scatter loop (leaf mode), a tight memoized-read loop
/// (Fig. 1b), or per-node recompute (Fig. 1c/1d).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn process_at_u<K: RowKernels, E: Emitter>(
    k: K,
    ctx: &KernelCtx<'_>,
    th: usize,
    u: usize,
    clo: usize,
    chi: usize,
    use_saved: bool,
    views: &[Option<SharedRows<'_>>],
    kprev: &[f64],
    tbuf: &mut [f64],
    rs: usize,
    cur: &mut [usize],
    end: &mut [usize],
    em: &mut E,
) {
    let d = ctx.csf.ndim();
    let r = ctx.rank;
    let csf = ctx.csf;
    let fids = csf.fids(u);
    if u == d - 1 {
        // Leaf mode: Ā⁽ᵈ⁻¹⁾[fid] += val · k_{d-2}  (KRP scatter). The
        // scattered-to rows have no locality, so pull each one toward
        // L1 a few non-zeros ahead of its update.
        let vals = csf.vals();
        for idx in clo..chi {
            if idx + SCATTER_PREFETCH < chi {
                em.prefetch(fids[idx + SCATTER_PREFETCH] as usize);
            }
            em.scaled(k, fids[idx] as usize, vals[idx], kprev);
        }
        return;
    }
    if use_saved && views[u].is_some() {
        // Fig. 1b: one memoized read per node. The memoized rows are
        // sequential (hardware prefetch covers them); only the output
        // scatter needs a hint.
        let view = views[u].as_ref().unwrap();
        for idx in clo..chi {
            if idx + SCATTER_PREFETCH < chi {
                em.prefetch(fids[idx + SCATTER_PREFETCH] as usize);
            }
            // SAFETY: row `idx + th` was written by this thread during
            // the mode-0 pass under the same schedule, and no pass
            // writes it concurrently with this read.
            let t_u = unsafe { view.row(idx + th) };
            em.product(k, fids[idx] as usize, kprev, t_u);
        }
        return;
    }
    for idx in clo..chi {
        // Fig. 1c/1d: recompute t_u from the deepest usable saved level
        // (or the leaves).
        compute_t(k, ctx, th, u, idx, use_saved, views, tbuf, rs, cur, end);
        em.product(k, fids[idx] as usize, kprev, &tbuf[u * rs..u * rs + r]);
    }
}

/// Fills `tbuf[u·rs..]` with `t_u` for node `idx0` at level `base = u`:
/// the partial MTTKRP of the node's (thread-clamped) subtree with
/// factors `base+1..d-1` contracted — descending only until a memoized
/// level or the leaves (Algorithms 7/8). Iterative; reuses the cursor
/// levels `base+1..d-1`, which the caller's traversal never touches.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn compute_t<K: RowKernels>(
    k: K,
    ctx: &KernelCtx<'_>,
    th: usize,
    base: usize,
    idx0: usize,
    use_saved: bool,
    views: &[Option<SharedRows<'_>>],
    tbuf: &mut [f64],
    rs: usize,
    cur: &mut [usize],
    end: &mut [usize],
) {
    let d = ctx.csf.ndim();
    let r = ctx.rank;
    let csf = ctx.csf;
    let sched = ctx.sched;
    let vals = csf.vals();
    let is_saved = |l: usize| use_saved && views[l].is_some();
    let (lo, hi) = child_range(csf, base + 1, idx0);
    let (clo, chi) = sched.clamp(th, base + 1, lo, hi);
    let tb = &mut tbuf[base * rs..base * rs + r];
    if base + 1 == d - 1 {
        // Children are leaves: one streaming overwrite-gather — no
        // zero-fill round trip, the accumulators start at +0.0 in
        // registers.
        let leaf_fids = csf.fids(d - 1);
        let leaf = ctx.factors[d - 1];
        k.gather_fiber(tb, &vals[clo..chi], &leaf_fids[clo..chi], leaf.as_slice(), leaf.cols());
        return;
    }
    tb.fill(0.0);
    if is_saved(base + 1) {
        // Children are memoized: tight hadamard run (Fig. 1c).
        let view = views[base + 1].as_ref().unwrap();
        let cfids = csf.fids(base + 1);
        let cfactor = ctx.factors[base + 1];
        for c in clo..chi {
            // SAFETY: same ownership argument as in `process_at_u`.
            k.hadamard_row(tb, unsafe { view.row(c + th) }, cfactor.row(cfids[c] as usize));
        }
        return;
    }
    let mut level = base + 1;
    cur[level] = clo;
    end[level] = chi;
    loop {
        if cur[level] < end[level] {
            let c = cur[level];
            let (nlo, nhi) = child_range(csf, level + 1, c);
            let (nclo, nchi) = sched.clamp(th, level + 1, nlo, nhi);
            if level + 1 == d - 1 {
                // Leaf children: open + close inline.
                let leaf_fids = csf.fids(d - 1);
                let leaf = ctx.factors[d - 1];
                let frow = ctx.factors[level].row(csf.fids(level)[c] as usize);
                let (thead, ttail) = tbuf.split_at_mut(level * rs);
                let tprev = &mut thead[(level - 1) * rs..(level - 1) * rs + r];
                if nchi - nclo == 1 {
                    k.krp_axpy(tprev, vals[nclo], leaf.row(leaf_fids[nclo] as usize), frow);
                } else {
                    let tl = &mut ttail[..r];
                    k.gather_fiber(
                        tl,
                        &vals[nclo..nchi],
                        &leaf_fids[nclo..nchi],
                        leaf.as_slice(),
                        leaf.cols(),
                    );
                    k.hadamard_row(tprev, tl, frow);
                }
                cur[level] += 1;
            } else if is_saved(level + 1) {
                // Memoized children: tight hadamard, then close.
                let view = views[level + 1].as_ref().unwrap();
                let cfids = csf.fids(level + 1);
                let cfactor = ctx.factors[level + 1];
                let frow = ctx.factors[level].row(csf.fids(level)[c] as usize);
                let (thead, ttail) = tbuf.split_at_mut(level * rs);
                let tprev = &mut thead[(level - 1) * rs..(level - 1) * rs + r];
                let tl = &mut ttail[..r];
                tl.fill(0.0);
                for cc in nclo..nchi {
                    // SAFETY: same ownership argument as above.
                    k.hadamard_row(tl, unsafe { view.row(cc + th) }, cfactor.row(cfids[cc] as usize));
                }
                k.hadamard_row(tprev, tl, frow);
                cur[level] += 1;
            } else {
                // Internal node: zero its accumulator and descend.
                tbuf[level * rs..level * rs + r].fill(0.0);
                level += 1;
                cur[level] = nclo;
                end[level] = nchi;
            }
        } else {
            level -= 1;
            if level == base {
                return;
            }
            let c = cur[level];
            let frow = ctx.factors[level].row(csf.fids(level)[c] as usize);
            let (thead, ttail) = tbuf.split_at_mut(level * rs);
            k.hadamard_row(
                &mut thead[(level - 1) * rs..(level - 1) * rs + r],
                &ttail[..r],
                frow,
            );
            cur[level] += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Convenience wrappers (allocating; baselines, STeF2, tests)
// ---------------------------------------------------------------------

/// Computes `Ā⁽⁰⁾` and stores all partials flagged in `partials`.
///
/// `out` must be `level_dims[0] × R`; it is zeroed here. This wrapper
/// builds a throw-away [`Workspace`] per call and fans out on the
/// process-global runtime — callers on a hot path (the engine) hold
/// their own workspace and executor and use [`mode0_with`].
pub fn mode0_pass(ctx: &KernelCtx<'_>, partials: &mut PartialStore, out: &mut Mat) {
    assert_eq!(partials.nthreads(), ctx.sched.nthreads());
    let views = partials.shared_views();
    let mut ws = Workspace::new(ctx.csf.ndim(), ctx.rank, ctx.sched.nthreads(), 0);
    mode0_with(ctx, &views, crate::runtime::global(), &mut ws, out);
}

/// Computes `Ā⁽ᵘ⁾` for a non-root level `u`, using memoized partials
/// where available (`use_saved`), and returns it (`level_dims[u] × R`).
/// Allocating wrapper over [`modeu_with`]; see [`mode0_pass`].
pub fn modeu_pass(
    ctx: &KernelCtx<'_>,
    partials: &mut PartialStore,
    u: usize,
    accum: ResolvedAccum,
    use_saved: bool,
) -> Mat {
    assert_eq!(partials.nthreads(), ctx.sched.nthreads());
    let n_u = ctx.csf.level_dims()[u];
    let mut out = Mat::zeros(n_u, ctx.rank);
    let priv_rows = if accum == ResolvedAccum::Privatized {
        n_u
    } else {
        0
    };
    let mut ws = Workspace::new(ctx.csf.ndim(), ctx.rank, ctx.sched.nthreads(), priv_rows);
    let views = partials.shared_views();
    modeu_with(
        ctx,
        &views,
        use_saved,
        u,
        accum,
        crate::runtime::global(),
        &mut ws,
        &mut out,
    );
    out
}

/// Children of node `(level-1, pindex)` — the root "parent" is virtual.
#[inline]
fn child_range(csf: &Csf, level: usize, pindex: usize) -> (usize, usize) {
    let p = csf.ptr(level - 1);
    (p[pindex], p[pindex + 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::LoadBalance;
    use linalg::assert_mat_approx_eq;
    use sptensor::{build_csf, CooTensor};

    fn pseudo_tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = vec![0u32; dims.len()];
        for _ in 0..nnz {
            for (c, &d) in coord.iter_mut().zip(dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.push(&coord, ((x >> 40) % 7) as f64 * 0.25 + 0.5);
        }
        t.sort_dedup();
        t
    }

    fn rand_factors(dims: &[usize], r: usize, seed: u64) -> Vec<Mat> {
        let mut x = seed | 1;
        dims.iter()
            .map(|&n| {
                Mat::from_fn(n, r, |_, _| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 35) % 1000) as f64 / 500.0 - 1.0
                })
            })
            .collect()
    }

    /// Runs every mode's MTTKRP with the given config and compares each
    /// against the COO reference.
    #[allow(clippy::too_many_arguments)]
    fn check_all_modes(
        dims: &[usize],
        nnz: usize,
        rank: usize,
        nthreads: usize,
        save: Vec<bool>,
        accum: ResolvedAccum,
        balance: LoadBalance,
        seed: u64,
    ) {
        let t = pseudo_tensor(dims, nnz, seed);
        let order: Vec<usize> = (0..dims.len()).collect();
        let csf = build_csf(&t, &order);
        let sched = Schedule::build(&csf, nthreads, balance);
        let mut partials = if save.iter().any(|&s| s) {
            PartialStore::allocate(&csf, &save, nthreads, rank)
        } else {
            PartialStore::empty(dims.len(), nthreads, rank)
        };
        let factors = rand_factors(dims, rank, seed.wrapping_add(1));
        let refs: Vec<&Mat> = factors.iter().collect();
        let ctx = KernelCtx::new(&csf, &sched, refs, rank);

        let mut out0 = Mat::zeros(dims[0], rank);
        mode0_pass(&ctx, &mut partials, &mut out0);
        let expect0 = t.mttkrp_reference(&factors, 0);
        assert_mat_approx_eq(&out0, &expect0, 1e-9);

        for u in 1..dims.len() {
            let got = modeu_pass(&ctx, &mut partials, u, accum, true);
            let expect = t.mttkrp_reference(&factors, u);
            assert_mat_approx_eq(&got, &expect, 1e-9);
        }
    }

    #[test]
    fn three_d_no_memo_single_thread() {
        check_all_modes(
            &[8, 9, 10],
            300,
            4,
            1,
            vec![false; 3],
            ResolvedAccum::Privatized,
            LoadBalance::NnzBalanced,
            1,
        );
    }

    #[test]
    fn three_d_memo_multi_thread() {
        check_all_modes(
            &[8, 9, 10],
            300,
            4,
            5,
            vec![false, true, false],
            ResolvedAccum::Privatized,
            LoadBalance::NnzBalanced,
            2,
        );
    }

    #[test]
    fn four_d_all_memo_configs() {
        for mask in 0..4u32 {
            let save = vec![false, mask & 1 != 0, mask & 2 != 0, false];
            check_all_modes(
                &[6, 7, 8, 5],
                400,
                3,
                4,
                save,
                ResolvedAccum::Privatized,
                LoadBalance::NnzBalanced,
                3,
            );
        }
    }

    #[test]
    fn five_d_with_memo() {
        check_all_modes(
            &[4, 5, 6, 4, 5],
            500,
            3,
            6,
            vec![false, true, false, true, false],
            ResolvedAccum::Privatized,
            LoadBalance::NnzBalanced,
            4,
        );
    }

    #[test]
    fn atomic_accumulation_matches() {
        check_all_modes(
            &[8, 9, 10],
            300,
            4,
            5,
            vec![false, true, false],
            ResolvedAccum::Atomic,
            LoadBalance::NnzBalanced,
            5,
        );
    }

    #[test]
    fn slice_schedule_matches() {
        check_all_modes(
            &[8, 9, 10],
            300,
            4,
            3,
            vec![false, true, false],
            ResolvedAccum::Privatized,
            LoadBalance::SliceBased,
            6,
        );
    }

    #[test]
    fn many_threads_tiny_tensor() {
        check_all_modes(
            &[3, 3, 3],
            10,
            2,
            16,
            vec![false, true, false],
            ResolvedAccum::Privatized,
            LoadBalance::NnzBalanced,
            7,
        );
    }

    #[test]
    fn two_d_matrix_case() {
        check_all_modes(
            &[12, 15],
            100,
            4,
            3,
            vec![false, false],
            ResolvedAccum::Privatized,
            LoadBalance::NnzBalanced,
            8,
        );
    }

    #[test]
    fn skewed_tensor_with_heavy_boundaries() {
        // Two root slices, most mass in one: thread boundaries fall
        // mid-slice, exercising replication + atomics heavily.
        let mut t = CooTensor::new(vec![2, 20, 20]);
        let mut x = 11u64;
        let mut coord = [0u32; 3];
        for _ in 0..600 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            coord[0] = if (x >> 20).is_multiple_of(10) { 1 } else { 0 };
            coord[1] = ((x >> 30) % 20) as u32;
            coord[2] = ((x >> 40) % 20) as u32;
            t.push(&coord, 1.0 + ((x >> 50) % 3) as f64);
        }
        t.sort_dedup();
        let csf = build_csf(&t, &[0, 1, 2]);
        let rank = 4;
        for nthreads in [2, 4, 8] {
            let sched = Schedule::nnz_balanced(&csf, nthreads);
            let save = vec![false, true, false];
            let mut partials = PartialStore::allocate(&csf, &save, nthreads, rank);
            let factors = rand_factors(t.dims(), rank, 99);
            let refs: Vec<&Mat> = factors.iter().collect();
            let ctx = KernelCtx::new(&csf, &sched, refs, rank);
            let mut out0 = Mat::zeros(2, rank);
            mode0_pass(&ctx, &mut partials, &mut out0);
            assert_mat_approx_eq(&out0, &t.mttkrp_reference(&factors, 0), 1e-9);
            for u in 1..3 {
                let got = modeu_pass(&ctx, &mut partials, u, ResolvedAccum::Privatized, true);
                assert_mat_approx_eq(&got, &t.mttkrp_reference(&factors, u), 1e-9);
            }
        }
    }

    #[test]
    fn stale_partials_can_be_bypassed() {
        // Consume with use_saved = false: saved buffers must be ignored.
        let t = pseudo_tensor(&[8, 9, 10], 250, 12);
        let csf = build_csf(&t, &[0, 1, 2]);
        let rank = 4;
        let nthreads = 4;
        let sched = Schedule::nnz_balanced(&csf, nthreads);
        let save = vec![false, true, false];
        let mut partials = PartialStore::allocate(&csf, &save, nthreads, rank);
        // Poison the memo buffer (as if factors had changed since mode 0).
        let factors = rand_factors(t.dims(), rank, 13);
        let refs: Vec<&Mat> = factors.iter().collect();
        let ctx = KernelCtx::new(&csf, &sched, refs, rank);
        let got = modeu_pass(&ctx, &mut partials, 1, ResolvedAccum::Privatized, false);
        assert_mat_approx_eq(&got, &t.mttkrp_reference(&factors, 1), 1e-9);
    }

    #[test]
    fn permuted_level_order_still_correct() {
        // CSF in a non-identity order: kernels work in level space, the
        // reference in mode space — map factors and outputs accordingly.
        let t = pseudo_tensor(&[7, 11, 5], 300, 14);
        let order = vec![2usize, 0, 1];
        let csf = build_csf(&t, &order);
        let rank = 3;
        let nthreads = 3;
        let sched = Schedule::nnz_balanced(&csf, nthreads);
        let save = vec![false, true, false];
        let mut partials = PartialStore::allocate(&csf, &save, nthreads, rank);
        let factors = rand_factors(t.dims(), rank, 15);
        let level_refs: Vec<&Mat> = order.iter().map(|&m| &factors[m]).collect();
        let ctx = KernelCtx::new(&csf, &sched, level_refs, rank);

        let mut out0 = Mat::zeros(t.dims()[order[0]], rank);
        mode0_pass(&ctx, &mut partials, &mut out0);
        assert_mat_approx_eq(&out0, &t.mttkrp_reference(&factors, order[0]), 1e-9);
        for u in 1..3 {
            let got = modeu_pass(&ctx, &mut partials, u, ResolvedAccum::Privatized, true);
            assert_mat_approx_eq(&got, &t.mttkrp_reference(&factors, order[u]), 1e-9);
        }
    }

    #[test]
    fn matches_legacy_kernels_bitwise() {
        // The rewrite preserves every arithmetic ordering; when no
        // multiply-add fuses — scalar dispatch without FMA codegen —
        // the two implementations must agree bit for bit. Fused
        // multiply-adds (compile-time FMA codegen, or the runtime AVX2/
        // NEON paths) round once where legacy's mode-u emit (`krp_row`
        // then a plain add) rounds twice, so only closeness can be
        // required there.
        let fused = cfg!(target_feature = "fma")
            || linalg::simd::active() != linalg::simd::SimdPath::Scalar;
        let tol = if fused { 1e-12 } else { 0.0 };
        for (dims, save, nthreads) in [
            (vec![8usize, 9, 10], vec![false, true, false], 1),
            (vec![8, 9, 10], vec![false, false, false], 4),
            (vec![6, 7, 8, 5], vec![false, true, true, false], 3),
            (vec![4, 5, 6, 4, 5], vec![false, false, true, false, false], 5),
        ] {
            let t = pseudo_tensor(&dims, 420, 21);
            let csf = build_csf(&t, &(0..dims.len()).collect::<Vec<_>>());
            let rank = 5;
            let sched = Schedule::nnz_balanced(&csf, nthreads);
            let factors = rand_factors(&dims, rank, 22);
            let refs: Vec<&Mat> = factors.iter().collect();
            let ctx = KernelCtx::new(&csf, &sched, refs, rank);
            let mk_partials = || {
                if save.iter().any(|&s| s) {
                    PartialStore::allocate(&csf, &save, nthreads, rank)
                } else {
                    PartialStore::empty(dims.len(), nthreads, rank)
                }
            };
            let mut p_new = mk_partials();
            let mut p_old = mk_partials();
            let mut out_new = Mat::zeros(dims[0], rank);
            let mut out_old = Mat::zeros(dims[0], rank);
            mode0_pass(&ctx, &mut p_new, &mut out_new);
            crate::kernels_legacy::mode0_pass(&ctx, &mut p_old, &mut out_old);
            assert_mat_approx_eq(&out_new, &out_old, tol);
            for u in 1..dims.len() {
                for accum in [ResolvedAccum::Privatized, ResolvedAccum::Atomic] {
                    let a = modeu_pass(&ctx, &mut p_new, u, accum, true);
                    let b = crate::kernels_legacy::modeu_pass(&ctx, &mut p_old, u, accum, true);
                    assert_mat_approx_eq(&a, &b, tol);
                }
            }
        }
    }

    #[test]
    fn workspace_reuse_never_reallocates() {
        // Engine-style usage: one workspace across repeated passes over
        // every mode and both accumulation strategies.
        let t = pseudo_tensor(&[10, 12, 14, 9], 600, 31);
        let dims = t.dims().to_vec();
        let csf = build_csf(&t, &[0, 1, 2, 3]);
        let rank = 6;
        let nthreads = 4;
        let sched = Schedule::nnz_balanced(&csf, nthreads);
        let save = vec![false, true, false, false];
        let mut partials = PartialStore::allocate(&csf, &save, nthreads, rank);
        let factors = rand_factors(&dims, rank, 32);
        let refs: Vec<&Mat> = factors.iter().collect();
        let ctx = KernelCtx::new(&csf, &sched, refs, rank);
        let max_n = *csf.level_dims().iter().max().unwrap();
        let mut ws = Workspace::new(4, rank, nthreads, max_n);
        let rt = crate::runtime::Executor::new(crate::runtime::Runtime::Pool, 2);
        let mut out0 = Mat::zeros(csf.level_dims()[0], rank);
        for _round in 0..3 {
            let views = partials.shared_views();
            mode0_with(&ctx, &views, &rt, &mut ws, &mut out0);
            for u in 1..4 {
                let mut out = Mat::zeros(csf.level_dims()[u], rank);
                for accum in [ResolvedAccum::Privatized, ResolvedAccum::Atomic] {
                    modeu_with(&ctx, &views, true, u, accum, &rt, &mut ws, &mut out);
                    assert_mat_approx_eq(&out, &t.mttkrp_reference(&factors, u), 1e-9);
                }
            }
        }
        assert_eq!(ws.alloc_events(), 0, "passes must not grow the workspace");
    }
}
