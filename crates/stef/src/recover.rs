//! Numerical-failure detection and recovery for the CPD driver.
//!
//! ALS on real-world tensors fails in well-understood ways: a
//! rank-deficient Gram system, a factor blown up to Inf/NaN by a bad
//! solve, memoized partials corrupted by a faulty engine, or a fit that
//! starts *dropping* (divergence — impossible for exact ALS, so always a
//! numerical symptom). The driver detects each per iteration and walks an
//! escalation ladder instead of panicking:
//!
//! 1. **Ridge retry** — re-solve the normal equations with a larger
//!    diagonal ridge (cheapest, fixes near-singularity);
//! 2. **Factor re-init** — replace a non-finite factor with a fresh
//!    deterministic initialization (loses that factor's progress only);
//! 3. **Engine fallback** — permanently disable memoization via
//!    [`crate::engine::MttkrpEngine::degrade_to_unmemoized`] and
//!    recompute (fixes corrupt partials at a per-iteration cost);
//! 4. **Typed error** — if the ladder is exhausted the run ends with a
//!    [`crate::error::StefError`], never a panic.
//!
//! Every rung taken is counted in [`RecoveryEvents`] and surfaced on
//! [`crate::cpd::CpdResult`], so silent degradation is impossible.

use linalg::Mat;

/// Knobs for the escalation ladder.
#[derive(Clone, Debug)]
pub struct RecoveryPolicy {
    /// Master switch; `false` turns every detection into an immediate
    /// typed error (useful in tests and for debugging root causes).
    pub enabled: bool,
    /// Additional ridged solve attempts after the plain solve fails.
    pub max_ridge_retries: usize,
    /// Total factor re-initializations allowed per run.
    pub max_factor_reinits: usize,
    /// Whether the driver may disable engine memoization.
    pub allow_engine_fallback: bool,
    /// Consecutive fit drops that count as divergence.
    pub divergence_window: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            enabled: true,
            max_ridge_retries: 2,
            max_factor_reinits: 2,
            allow_engine_fallback: true,
            divergence_window: 3,
        }
    }
}

impl RecoveryPolicy {
    /// A policy that never recovers — every detection is a typed error.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            enabled: false,
            ..RecoveryPolicy::default()
        }
    }
}

/// One rung of the escalation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The Gram solve was retried with a larger ridge.
    RidgeRetry,
    /// A factor matrix was re-initialized from a fresh seed.
    FactorReinit,
    /// The engine dropped to its unmemoized path.
    EngineFallback,
    /// A divergence alarm fired (fit fell `divergence_window` times).
    DivergenceAlarm,
}

/// A recovery that actually happened, for post-mortem inspection.
#[derive(Clone, Debug)]
pub struct RecoveryEvent {
    /// 1-based ALS iteration.
    pub iteration: usize,
    /// Mode being updated, if the event is mode-specific.
    pub mode: Option<usize>,
    pub action: RecoveryAction,
    /// Human-readable cause.
    pub detail: String,
}

/// Counters plus the full event log for one CPD run.
#[derive(Debug, Default)]
pub struct RecoveryEvents {
    pub ridge_retries: usize,
    pub factor_reinits: usize,
    pub engine_fallbacks: usize,
    pub divergence_alarms: usize,
    pub events: Vec<RecoveryEvent>,
}

impl RecoveryEvents {
    /// Total recoveries of any kind.
    pub fn total(&self) -> usize {
        self.ridge_retries + self.factor_reinits + self.engine_fallbacks + self.divergence_alarms
    }

    pub(crate) fn record(
        &mut self,
        iteration: usize,
        mode: Option<usize>,
        action: RecoveryAction,
        detail: impl Into<String>,
    ) {
        match action {
            RecoveryAction::RidgeRetry => self.ridge_retries += 1,
            RecoveryAction::FactorReinit => self.factor_reinits += 1,
            RecoveryAction::EngineFallback => self.engine_fallbacks += 1,
            RecoveryAction::DivergenceAlarm => self.divergence_alarms += 1,
        }
        self.events.push(RecoveryEvent {
            iteration,
            mode,
            action,
            detail: detail.into(),
        });
    }
}

/// Whether every entry of `m` is finite.
pub fn mat_is_finite(m: &Mat) -> bool {
    m.as_slice().iter().all(|x| x.is_finite())
}

/// Whether every entry of `xs` is finite.
pub fn slice_is_finite(xs: &[f64]) -> bool {
    xs.iter().all(|x| x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_permissive() {
        let p = RecoveryPolicy::default();
        assert!(p.enabled);
        assert!(p.allow_engine_fallback);
        assert!(p.max_ridge_retries >= 1);
        assert!(p.divergence_window >= 2);
        assert!(!RecoveryPolicy::disabled().enabled);
    }

    #[test]
    fn events_count_per_action() {
        let mut ev = RecoveryEvents::default();
        ev.record(1, Some(0), RecoveryAction::RidgeRetry, "a");
        ev.record(1, Some(0), RecoveryAction::RidgeRetry, "b");
        ev.record(2, Some(1), RecoveryAction::FactorReinit, "c");
        ev.record(3, None, RecoveryAction::EngineFallback, "d");
        ev.record(4, None, RecoveryAction::DivergenceAlarm, "e");
        assert_eq!(ev.ridge_retries, 2);
        assert_eq!(ev.factor_reinits, 1);
        assert_eq!(ev.engine_fallbacks, 1);
        assert_eq!(ev.divergence_alarms, 1);
        assert_eq!(ev.total(), 5);
        assert_eq!(ev.events.len(), 5);
    }

    #[test]
    fn finite_checks_catch_nan_and_inf() {
        let good = Mat::from_fn(2, 2, |i, j| (i + j) as f64);
        assert!(mat_is_finite(&good));
        let bad = Mat::from_fn(2, 2, |i, j| if i == j { f64::NAN } else { 1.0 });
        assert!(!mat_is_finite(&bad));
        assert!(slice_is_finite(&[1.0, 2.0]));
        assert!(!slice_is_finite(&[1.0, f64::INFINITY]));
    }
}
