//! Engine-owned scratch memory for the MTTKRP kernels.
//!
//! The hot path of every ALS iteration is `d` kernel passes; before this
//! module existed each pass allocated per-thread `Vec<Vec<f64>>` scratch
//! rows and — worse — one full `n_u × R` privatized output matrix *per
//! logical thread per call*. A [`Workspace`] hoists all of that into
//! three flat arenas sized once at engine preparation and reused for
//! every mode of every iteration:
//!
//! * `scratch` — per-thread `f64` rows: `d` KRP rows (`k_l`), `d`
//!   accumulator rows (`t_l`) and one update row, each padded to an
//!   8-element boundary so neighbouring rows never share a cache line
//!   *and* the row primitives in `linalg::krp` see block-aligned lengths;
//! * `stacks` — per-thread `usize` cursor/end pairs for the explicit
//!   iterative traversal (2 per CSF level);
//! * `priv_buf` — the privatized output pool: one `max_n_u × R` block
//!   per logical thread, zeroed and reduced inside the pass.
//!
//! After construction (or a single `ensure` growth, which counts as
//! warm-up), the kernels perform **no heap allocation**: the
//! [`Workspace::alloc_events`] counter — incremented on every arena
//! (re)allocation — lets tests assert exactly that.

/// Reusable kernel scratch. See the module docs.
pub struct Workspace {
    d: usize,
    rank: usize,
    nthreads: usize,
    /// Row stride: `rank` rounded up to a multiple of 8.
    row_stride: usize,
    /// Per-thread scratch span: `(2d + 1) · row_stride`.
    arena_stride: usize,
    scratch: Vec<f64>,
    /// Per-thread cursor span: `2d` (a `cur`/`end` pair per level).
    stack_stride: usize,
    stacks: Vec<usize>,
    /// Privatized rows per thread the pool is sized for.
    priv_rows: usize,
    priv_stride: usize,
    priv_buf: Vec<f64>,
    alloc_events: u64,
}

/// Disjoint mutable views over the workspace arenas, so the kernels can
/// borrow all three at once.
pub(crate) struct WsParts<'a> {
    pub scratch: &'a mut [f64],
    pub stacks: &'a mut [usize],
    pub priv_buf: &'a mut [f64],
    pub row_stride: usize,
    pub arena_stride: usize,
    pub stack_stride: usize,
    pub priv_stride: usize,
}

fn pad8(n: usize) -> usize {
    (n + 7) & !7
}

impl Workspace {
    /// Builds a workspace for `d`-level kernels at rank `rank` with
    /// `nthreads` logical threads, able to privatize outputs of up to
    /// `priv_rows` rows. Construction allocates; nothing after it does
    /// (unless a later [`Workspace::ensure`] must grow — tracked by
    /// [`Workspace::alloc_events`]).
    pub fn new(d: usize, rank: usize, nthreads: usize, priv_rows: usize) -> Self {
        match Self::try_new(d, rank, nthreads, priv_rows) {
            Ok(ws) => ws,
            Err(bytes) => panic!("workspace allocation of {bytes} bytes failed"),
        }
    }

    /// Fallible [`Workspace::new`]: reserves each arena with
    /// `try_reserve` and reports the failing request in bytes instead of
    /// aborting on OOM.
    pub fn try_new(
        d: usize,
        rank: usize,
        nthreads: usize,
        priv_rows: usize,
    ) -> Result<Self, usize> {
        let row_stride = pad8(rank.max(1));
        let arena_stride = pad8((2 * d + 1) * row_stride);
        let priv_stride = pad8(priv_rows * rank);
        let mut scratch: Vec<f64> = Vec::new();
        scratch
            .try_reserve_exact(nthreads * arena_stride)
            .map_err(|_| nthreads * arena_stride * std::mem::size_of::<f64>())?;
        let mut priv_buf: Vec<f64> = Vec::new();
        priv_buf
            .try_reserve_exact(nthreads * priv_stride)
            .map_err(|_| nthreads * priv_stride * std::mem::size_of::<f64>())?;
        drop((scratch, priv_buf)); // `ensure` re-sizes; the reserve proved feasibility
        let mut ws = Workspace {
            d: 0,
            rank: 0,
            nthreads: 0,
            row_stride: 0,
            arena_stride: 0,
            scratch: Vec::new(),
            stack_stride: 0,
            stacks: Vec::new(),
            priv_rows: 0,
            priv_stride: 0,
            priv_buf: Vec::new(),
            alloc_events: 0,
        };
        ws.ensure(d, rank, nthreads, priv_rows);
        // Construction is warm-up by definition.
        ws.alloc_events = 0;
        Ok(ws)
    }

    /// Bytes of the non-degradable arenas (scratch rows + traversal
    /// stacks) for a configuration — the floor the memory budget can
    /// never relax below.
    pub fn fixed_bytes(d: usize, rank: usize, nthreads: usize) -> usize {
        let arena_stride = pad8((2 * d + 1) * pad8(rank.max(1)));
        let stack_stride = 2 * d.max(1);
        nthreads * arena_stride * std::mem::size_of::<f64>()
            + nthreads * stack_stride * std::mem::size_of::<usize>()
    }

    /// Makes the arenas large enough for the given configuration,
    /// growing (and counting an allocation event) only when needed.
    /// Shrinking never happens — a larger earlier configuration keeps
    /// its arenas.
    pub fn ensure(&mut self, d: usize, rank: usize, nthreads: usize, priv_rows: usize) {
        let row_stride = pad8(rank.max(1));
        let arena_stride = pad8((2 * d + 1) * row_stride);
        let stack_stride = 2 * d.max(1);
        let need_scratch = nthreads * arena_stride;
        let need_stacks = nthreads * stack_stride;
        let priv_stride = pad8(priv_rows * rank);
        let need_priv = nthreads * priv_stride;
        // Growth swaps in a *fresh* zeroed vector instead of `resize`:
        // `vec![0; n]` goes through `alloc_zeroed`, which hands back
        // lazily-mapped zero pages. The first write to each page — the
        // per-pass `fill(0.0)` each worker performs on its own span —
        // then faults the page in on the writing worker's NUMA node
        // (first-touch placement), instead of inheriting whatever node
        // a `resize` copy on the dispatching thread would have pinned.
        // Nothing reads arena contents across an `ensure` growth, so
        // dropping the old data is free.
        if self.scratch.len() < need_scratch {
            self.scratch = vec![0.0; need_scratch];
            self.alloc_events += 1;
        }
        if self.stacks.len() < need_stacks {
            self.stacks = vec![0; need_stacks];
            self.alloc_events += 1;
        }
        if self.priv_buf.len() < need_priv {
            self.priv_buf = vec![0.0; need_priv];
            self.alloc_events += 1;
        }
        self.d = d;
        self.rank = rank;
        self.nthreads = nthreads;
        self.row_stride = row_stride;
        self.arena_stride = arena_stride;
        self.stack_stride = stack_stride;
        self.priv_rows = priv_rows;
        self.priv_stride = priv_stride;
    }

    /// Number of arena (re)allocations since construction. Zero once the
    /// workspace is warm — the kernels' no-allocation guarantee.
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }

    /// Total bytes held by the arenas.
    pub fn bytes(&self) -> usize {
        self.scratch.len() * std::mem::size_of::<f64>()
            + self.stacks.len() * std::mem::size_of::<usize>()
            + self.priv_buf.len() * std::mem::size_of::<f64>()
    }

    /// Logical thread count the arenas are sized for.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Whether the privatized pool can hold `rows`-row outputs at the
    /// current rank for every thread.
    pub fn can_privatize(&self, rows: usize) -> bool {
        self.priv_stride >= rows * self.rank
    }

    pub(crate) fn parts(&mut self) -> WsParts<'_> {
        WsParts {
            scratch: &mut self.scratch,
            stacks: &mut self.stacks,
            priv_buf: &mut self.priv_buf,
            row_stride: self.row_stride,
            arena_stride: self.arena_stride,
            stack_stride: self.stack_stride,
            priv_stride: self.priv_stride,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_counts_no_events() {
        let ws = Workspace::new(3, 16, 4, 100);
        assert_eq!(ws.alloc_events(), 0);
        assert!(ws.bytes() > 0);
        assert!(ws.can_privatize(100));
        assert!(!ws.can_privatize(101));
    }

    #[test]
    fn ensure_is_idempotent_and_grows_monotonically() {
        let mut ws = Workspace::new(3, 16, 4, 50);
        ws.ensure(3, 16, 4, 50);
        ws.ensure(3, 16, 4, 10); // smaller: no growth
        ws.ensure(2, 8, 2, 0); // strictly smaller config: no growth
        assert_eq!(ws.alloc_events(), 0);
        ws.ensure(5, 16, 4, 50); // deeper tensor: scratch + stacks grow
        assert!(ws.alloc_events() > 0);
        let events = ws.alloc_events();
        ws.ensure(5, 16, 4, 50);
        assert_eq!(ws.alloc_events(), events);
    }

    #[test]
    fn rows_are_padded_to_blocks() {
        let mut ws = Workspace::new(4, 5, 2, 7);
        let parts = ws.parts();
        assert_eq!(parts.row_stride, 8);
        assert_eq!(parts.row_stride % 8, 0);
        assert_eq!(parts.arena_stride % 8, 0);
        assert!(parts.scratch.len() >= 2 * parts.arena_stride);
        assert!(parts.stacks.len() >= 2 * parts.stack_stride);
        assert!(parts.priv_buf.len() >= 2 * 7 * 5);
    }
}
