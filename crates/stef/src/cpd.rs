//! CPD-ALS driver (paper Algorithm 2).
//!
//! One ALS iteration updates every factor in the engine's sweep order:
//! `Ā⁽ᵘ⁾ ← MTTKRP(T, factors ≠ u)`, then `A⁽ᵘ⁾ ← Ā⁽ᵘ⁾ V⁻¹` where `V` is
//! the Hadamard product of the other factors' Gram matrices, then column
//! normalization into `λ`. The fit
//! `1 − ‖T − [[λ; A⁰…]]‖ / ‖T‖` is computed with the standard trick that
//! reuses the last mode's MTTKRP result, so convergence checking costs
//! one Frobenius inner product instead of a pass over the tensor.

use crate::engine::MttkrpEngine;
use linalg::norms::{normalize_columns, ColumnNorm};
use linalg::ops::{frob_inner, gram_full, hadamard_inplace};
use linalg::solve::{solve_gram_system, SolveMethod};
use linalg::Mat;
use std::time::{Duration, Instant};

/// CPD-ALS configuration.
#[derive(Clone, Debug)]
pub struct CpdOptions {
    /// Decomposition rank `R`.
    pub rank: usize,
    /// Maximum ALS iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the change in fit.
    pub tol: f64,
    /// Seed for the random factor initialization.
    pub seed: u64,
}

impl CpdOptions {
    /// Sensible defaults: 50 iterations, `1e-5` fit tolerance.
    pub fn new(rank: usize) -> Self {
        CpdOptions {
            rank,
            max_iters: 50,
            tol: 1e-5,
            seed: 42,
        }
    }
}

/// The outcome of a CPD-ALS run.
#[derive(Debug)]
pub struct CpdResult {
    /// Factor matrices in original mode order, columns normalized.
    pub factors: Vec<Mat>,
    /// Component weights `λ`.
    pub lambda: Vec<f64>,
    /// Fit after each completed iteration.
    pub fits: Vec<f64>,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was met before `max_iters`.
    pub converged: bool,
    /// Wall time spent inside MTTKRP calls.
    pub mttkrp_time: Duration,
    /// Wall time of the whole ALS loop.
    pub total_time: Duration,
    /// Count of solves that needed a ridge or LU fallback.
    pub irregular_solves: usize,
    /// Cumulative MTTKRP seconds per original mode index — shows where
    /// the time goes (e.g. the slow leaf mode that motivates STeF2).
    pub mode_seconds: Vec<f64>,
}

impl CpdResult {
    /// Final fit (0 if no iteration ran).
    pub fn final_fit(&self) -> f64 {
        self.fits.last().copied().unwrap_or(0.0)
    }
}

/// Deterministic factor initialization: uniform values in `[0.1, 1.1)`
/// from a splitmix-style generator (positive, well-conditioned, and
/// independent of any external RNG crate).
pub fn init_factors(dims: &[usize], rank: usize, seed: u64) -> Vec<Mat> {
    let mut state = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(0xD1B54A32D192ED03);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    dims.iter()
        .map(|&n| Mat::from_fn(n, rank, |_, _| 0.1 + next()))
        .collect()
}

/// Runs CPD-ALS on `engine`.
pub fn cpd_als<E: MttkrpEngine + ?Sized>(engine: &mut E, opts: &CpdOptions) -> CpdResult {
    let dims = engine.dims().to_vec();
    let d = dims.len();
    let r = opts.rank;
    let sweep = engine.sweep_order();
    assert_eq!(sweep.len(), d, "sweep order must cover every mode");
    let norm_t_sq = engine.norm_sq();
    let norm_t = norm_t_sq.sqrt();

    let mut factors = init_factors(&dims, r, opts.seed);
    let mut lambda = vec![1.0; r];
    let mut grams: Vec<Mat> = factors.iter().map(gram_full).collect();

    let mut fits = Vec::new();
    let mut converged = false;
    let mut irregular_solves = 0usize;
    let mut mttkrp_time = Duration::ZERO;
    let mut mode_seconds = vec![0.0f64; d];
    let start = Instant::now();
    let mut iterations = 0usize;

    for it in 0..opts.max_iters {
        iterations = it + 1;
        let mut last_mttkrp: Option<(usize, Mat)> = None;
        for &mode in &sweep {
            let t0 = Instant::now();
            let ahat = engine.mttkrp(&factors, mode);
            let dt = t0.elapsed();
            mttkrp_time += dt;
            mode_seconds[mode] += dt.as_secs_f64();

            // V = Hadamard of all Grams except `mode`.
            let mut v = Mat::from_fn(r, r, |_, _| 1.0);
            for (m, g) in grams.iter().enumerate() {
                if m != mode {
                    hadamard_inplace(&mut v, g);
                }
            }
            let mut newf = ahat.clone();
            let method = solve_gram_system(&v, &mut newf);
            if method != SolveMethod::Cholesky {
                irregular_solves += 1;
            }
            let norm_kind = if it == 0 {
                ColumnNorm::Two
            } else {
                ColumnNorm::MaxClamped
            };
            normalize_columns(&mut newf, &mut lambda, norm_kind);
            grams[mode] = gram_full(&newf);
            factors[mode] = newf;
            last_mttkrp = Some((mode, ahat));
        }

        // Fit via the last mode's MTTKRP result.
        let (last_mode, ahat) = last_mttkrp.expect("at least one mode");
        let inner: f64 = {
            // Σ_r λ_r Σ_i Ā[i,r]·A[i,r]
            let mut per_col = vec![0.0; r];
            let a = &factors[last_mode];
            for i in 0..a.rows() {
                let (arow, hrow) = (a.row(i), ahat.row(i));
                for ((p, &x), &y) in per_col.iter_mut().zip(arow).zip(hrow) {
                    *p += x * y;
                }
            }
            per_col.iter().zip(&lambda).map(|(&p, &l)| p * l).sum()
        };
        let norm_model_sq: f64 = {
            let mut had = Mat::from_fn(r, r, |_, _| 1.0);
            for g in &grams {
                hadamard_inplace(&mut had, g);
            }
            let ll = Mat::from_fn(r, r, |i, j| lambda[i] * lambda[j]);
            frob_inner(&had, &ll)
        };
        let resid_sq = (norm_t_sq + norm_model_sq - 2.0 * inner).max(0.0);
        let fit = 1.0 - resid_sq.sqrt() / norm_t;
        let prev = fits.last().copied();
        fits.push(fit);
        if let Some(p) = prev {
            if (fit - p).abs() < opts.tol {
                converged = true;
                break;
            }
        }
    }

    CpdResult {
        factors,
        lambda,
        fits,
        iterations,
        converged,
        mttkrp_time,
        total_time: start.elapsed(),
        irregular_solves,
        mode_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ReferenceEngine, Stef};
    use crate::options::StefOptions;
    use sptensor::CooTensor;

    fn pseudo_tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = vec![0u32; dims.len()];
        for _ in 0..nnz {
            for (c, &d) in coord.iter_mut().zip(dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            t.push(&coord, ((x >> 40) % 9) as f64 * 0.3 + 0.4);
        }
        t.sort_dedup();
        t
    }

    #[test]
    fn init_factors_is_deterministic_and_positive() {
        let a = init_factors(&[5, 6], 3, 7);
        let b = init_factors(&[5, 6], 3, 7);
        assert_eq!(a[0].as_slice(), b[0].as_slice());
        assert!(a[1].as_slice().iter().all(|&v| (0.1..1.1).contains(&v)));
        let c = init_factors(&[5, 6], 3, 8);
        assert_ne!(a[0].as_slice(), c[0].as_slice());
    }

    #[test]
    fn fit_improves_monotonically_on_reference_engine() {
        let t = pseudo_tensor(&[10, 12, 8], 200, 1);
        let mut engine = ReferenceEngine::new(t);
        let result = cpd_als(&mut engine, &CpdOptions::new(4));
        assert!(result.iterations >= 2);
        // ALS fit is non-decreasing up to numerical noise.
        for w in result.fits.windows(2) {
            assert!(w[1] >= w[0] - 1e-8, "fit decreased: {:?}", result.fits);
        }
        assert!(result.final_fit() > 0.0, "fits {:?}", result.fits);
    }

    #[test]
    fn stef_and_reference_agree_exactly() {
        // Same init seed, same sweep order -> identical iterates (up to
        // fp tolerance), a strong end-to-end correctness check.
        let t = pseudo_tensor(&[10, 12, 8], 300, 2);
        let mut stef = Stef::prepare(&t, StefOptions::new(4));
        let sweep = stef.sweep_order();
        let mut reference = SweepOrderedReference {
            inner: ReferenceEngine::new(t),
            sweep,
        };
        let opts = CpdOptions {
            rank: 4,
            max_iters: 5,
            tol: 0.0,
            seed: 11,
        };
        let rs = cpd_als(&mut stef, &opts);
        let rr = cpd_als(&mut reference, &opts);
        assert_eq!(rs.fits.len(), rr.fits.len());
        for (a, b) in rs.fits.iter().zip(&rr.fits) {
            assert!((a - b).abs() < 1e-8, "fits diverged: {a} vs {b}");
        }
    }

    /// Reference engine forced to use a specific sweep order (so it can
    /// be compared iterate-by-iterate against STeF).
    struct SweepOrderedReference {
        inner: ReferenceEngine,
        sweep: Vec<usize>,
    }

    impl MttkrpEngine for SweepOrderedReference {
        fn dims(&self) -> &[usize] {
            self.inner.dims()
        }
        fn name(&self) -> String {
            "reference-ordered".into()
        }
        fn sweep_order(&self) -> Vec<usize> {
            self.sweep.clone()
        }
        fn norm_sq(&self) -> f64 {
            self.inner.norm_sq()
        }
        fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
            self.inner.mttkrp(factors, mode)
        }
    }

    #[test]
    fn converges_on_easy_tensor() {
        // A tensor that is exactly rank-1 (all values equal on a block).
        let mut t = CooTensor::new(vec![6, 6, 6]);
        for i in 0..3u32 {
            for j in 0..3u32 {
                for k in 0..3u32 {
                    t.push(&[i, j, k], 2.0);
                }
            }
        }
        let mut engine = ReferenceEngine::new(t);
        let mut opts = CpdOptions::new(2);
        opts.max_iters = 60;
        let result = cpd_als(&mut engine, &opts);
        assert!(
            result.final_fit() > 0.999,
            "rank-1 block should be recovered, fit {}",
            result.final_fit()
        );
        assert!(result.converged);
    }

    #[test]
    fn result_reports_timing_and_counts() {
        let t = pseudo_tensor(&[8, 8, 8], 150, 3);
        let mut engine = ReferenceEngine::new(t);
        let result = cpd_als(&mut engine, &CpdOptions::new(3));
        assert!(result.total_time >= result.mttkrp_time);
        assert_eq!(result.fits.len(), result.iterations);
    }

    #[test]
    fn mode_seconds_cover_all_modes() {
        let t = pseudo_tensor(&[8, 8, 8], 150, 5);
        let mut engine = ReferenceEngine::new(t);
        let result = cpd_als(&mut engine, &CpdOptions::new(3));
        assert_eq!(result.mode_seconds.len(), 3);
        assert!(result.mode_seconds.iter().all(|&s| s >= 0.0));
        let sum: f64 = result.mode_seconds.iter().sum();
        assert!((sum - result.mttkrp_time.as_secs_f64()).abs() < 0.05 * sum.max(1e-6) + 1e-4);
    }

    #[test]
    fn lambda_matches_rank() {
        let t = pseudo_tensor(&[8, 8, 8], 150, 4);
        let mut engine = ReferenceEngine::new(t);
        let result = cpd_als(&mut engine, &CpdOptions::new(5));
        assert_eq!(result.lambda.len(), 5);
        assert!(result.lambda.iter().all(|&l| l > 0.0));
    }
}
