//! CPD-ALS driver (paper Algorithm 2), with fault tolerance.
//!
//! One ALS iteration updates every factor in the engine's sweep order:
//! `Ā⁽ᵘ⁾ ← MTTKRP(T, factors ≠ u)`, then `A⁽ᵘ⁾ ← Ā⁽ᵘ⁾ V⁻¹` where `V` is
//! the Hadamard product of the other factors' Gram matrices, then column
//! normalization into `λ`. The fit
//! `1 − ‖T − [[λ; A⁰…]]‖ / ‖T‖` is computed with the standard trick that
//! reuses the last mode's MTTKRP result, so convergence checking costs
//! one Frobenius inner product instead of a pass over the tensor.
//!
//! The driver never panics on numerical failure. Non-finite MTTKRP
//! output, a singular Gram system, or a diverging fit walk the recovery
//! escalation ladder described in [`crate::recover`]; if the ladder is
//! exhausted the run ends with a typed [`StefError`]. With a
//! [`CheckpointPolicy`] the complete ALS state is snapshotted every `N`
//! iterations, and a run can restart from such a snapshot via
//! [`CpdOptions::resume`] — the checkpoint stores exact float bit
//! patterns, so the resumed trajectory is identical to an uninterrupted
//! one.

use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointPolicy, CHECKPOINT_VERSION};
use crate::engine::MttkrpEngine;
use crate::error::StefError;
use crate::model::DegradationEvent;
use crate::recover::{mat_is_finite, slice_is_finite, RecoveryAction, RecoveryEvents, RecoveryPolicy};
use crate::runtime::CancelToken;
use crate::telemetry::{Collector, TelemetryReport};
use linalg::norms::{normalize_columns, ColumnNorm};
use linalg::ops::{frob_inner, gram_full, hadamard_inplace};
use linalg::solve::{try_solve_gram_system, try_solve_gram_system_ridged, SolveMethod};
use linalg::Mat;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Observer invoked with the checkpoint's iteration number every time
/// the driver successfully writes a checkpoint file — both periodic
/// saves and the on-the-way-out save of a cancelled run. The supervisor
/// hangs its journal `checkpointed` records off this, so the journal
/// never claims a snapshot the filesystem does not hold.
#[derive(Clone)]
pub struct CheckpointHook(pub Arc<dyn Fn(usize) + Send + Sync>);

impl CheckpointHook {
    /// Wraps a closure.
    pub fn new(f: impl Fn(usize) + Send + Sync + 'static) -> Self {
        CheckpointHook(Arc::new(f))
    }
}

impl std::fmt::Debug for CheckpointHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CheckpointHook(..)")
    }
}

/// CPD-ALS configuration.
#[derive(Clone, Debug)]
pub struct CpdOptions {
    /// Decomposition rank `R`.
    pub rank: usize,
    /// Maximum ALS iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the change in fit.
    pub tol: f64,
    /// Seed for the random factor initialization.
    pub seed: u64,
    /// Numerical-failure recovery knobs.
    pub recovery: RecoveryPolicy,
    /// Periodic state snapshots (`None` = no checkpointing).
    pub checkpoint: Option<CheckpointPolicy>,
    /// Resume from a previously saved snapshot instead of a fresh
    /// initialization. The checkpoint's dims and rank must match.
    pub resume: Option<Checkpoint>,
    /// Cooperative cancellation: the driver checks the token at
    /// iteration start and after every mode update, aborts with
    /// [`StefError::Cancelled`], and — when a [`CheckpointPolicy`] is
    /// also configured — first writes a checkpoint of the last
    /// *completed* iteration, so the interrupted run resumes bit-exactly.
    pub cancel: Option<CancelToken>,
    /// Called after every successful checkpoint write (see
    /// [`CheckpointHook`]).
    pub on_checkpoint: Option<CheckpointHook>,
}

impl CpdOptions {
    /// Sensible defaults: 50 iterations, `1e-5` fit tolerance, recovery
    /// enabled, no checkpointing.
    pub fn new(rank: usize) -> Self {
        CpdOptions {
            rank,
            max_iters: 50,
            tol: 1e-5,
            seed: 42,
            recovery: RecoveryPolicy::default(),
            checkpoint: None,
            resume: None,
            cancel: None,
            on_checkpoint: None,
        }
    }
}

/// The outcome of a CPD-ALS run.
#[derive(Debug)]
pub struct CpdResult {
    /// Factor matrices in original mode order, columns normalized.
    pub factors: Vec<Mat>,
    /// Component weights `λ`.
    pub lambda: Vec<f64>,
    /// Fit after each completed iteration.
    pub fits: Vec<f64>,
    /// Number of iterations executed (includes iterations replayed from
    /// a resumed checkpoint).
    pub iterations: usize,
    /// Whether the tolerance was met before `max_iters`.
    pub converged: bool,
    /// Wall time spent inside MTTKRP calls.
    pub mttkrp_time: Duration,
    /// Wall time of the whole ALS loop.
    pub total_time: Duration,
    /// Count of solves that needed a ridge or LU fallback.
    pub irregular_solves: usize,
    /// Cumulative MTTKRP seconds per original mode index — shows where
    /// the time goes (e.g. the slow leaf mode that motivates STeF2).
    pub mode_seconds: Vec<f64>,
    /// Every recovery the driver performed, counted per rung.
    pub recovery: RecoveryEvents,
    /// Checkpoints written during this run.
    pub checkpoints_written: usize,
    /// The iteration a resumed run restarted from, if any.
    pub resumed_from: Option<usize>,
    /// Plan relaxations the engine applied to fit its memory budget
    /// (empty when unconstrained). Degraded runs compute the same
    /// numbers — these events explain the performance, not the result.
    pub degradations: Vec<DegradationEvent>,
    /// Telemetry snapshot: one record per completed iteration (per-mode
    /// wall time, measured vs model-predicted traffic, alloc events)
    /// plus any worker spans captured while tracing was enabled. Empty
    /// when the `telemetry` feature is compiled out.
    pub telemetry: TelemetryReport,
}

impl CpdResult {
    /// Final fit (0 if no iteration ran).
    pub fn final_fit(&self) -> f64 {
        self.fits.last().copied().unwrap_or(0.0)
    }
}

/// Deterministic factor initialization: uniform values in `[0.1, 1.1)`
/// from a splitmix-style generator (positive, well-conditioned, and
/// independent of any external RNG crate).
pub fn init_factors(dims: &[usize], rank: usize, seed: u64) -> Vec<Mat> {
    let mut state = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(0xD1B54A32D192ED03);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    dims.iter()
        .map(|&n| Mat::from_fn(n, rank, |_, _| 0.1 + next()))
        .collect()
}

/// Replaces factor `m` with a fresh deterministic initialization (a seed
/// derived from the run seed and the reinit count, so repeated reinits
/// differ) and resets `λ` — the FactorReinit recovery rung.
#[allow(clippy::too_many_arguments)]
fn reinit_factor(
    factors: &mut [Mat],
    grams: &mut [Mat],
    lambda: &mut [f64],
    m: usize,
    rank: usize,
    base_seed: u64,
    reinits_used: &mut usize,
    recovery: &mut RecoveryEvents,
    iteration: usize,
    detail: &str,
) {
    *reinits_used += 1;
    let seed = base_seed ^ 0xA24BAED4963EE407u64.wrapping_mul(*reinits_used as u64);
    let fresh = init_factors(&[factors[m].rows()], rank, seed)
        .pop()
        .expect("one factor requested");
    grams[m] = gram_full(&fresh);
    factors[m] = fresh;
    // The old λ carried scale from the discarded factor; reset and let
    // the next mode updates renormalize.
    lambda.fill(1.0);
    recovery.record(iteration, Some(m), RecoveryAction::FactorReinit, detail);
}

/// Runs one MTTKRP with panic isolation: a panic that escapes the
/// engine (e.g. a worker panic surfaced by a pool fan-out) becomes a
/// typed [`StefError::WorkerPanic`] instead of unwinding through the
/// driver. The pool has already healed itself by the time the panic
/// reaches this frame, so the same engine can run again.
fn guarded_mttkrp<E: MttkrpEngine + ?Sized>(
    engine: &mut E,
    factors: &[Mat],
    mode: usize,
    iteration: usize,
) -> Result<Mat, StefError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.mttkrp(factors, mode)))
        .map_err(|p| StefError::WorkerPanic {
            iteration,
            mode: Some(mode),
            message: crate::runtime::payload_message(p.as_ref()),
        })
}

/// Builds the [`StefError::Cancelled`] for an observed cancellation,
/// first writing the last completed iteration's state as a checkpoint
/// when both a policy and a snapshot exist.
fn cancel_error(
    token: &CancelToken,
    iteration: usize,
    checkpoint: &Option<CheckpointPolicy>,
    last_good: &Option<Checkpoint>,
    hook: &Option<CheckpointHook>,
) -> StefError {
    let checkpoint_iteration = match (checkpoint, last_good) {
        (Some(policy), Some(cp)) => cp.save(&policy.path).ok().map(|_| cp.iteration),
        _ => None,
    };
    if let (Some(it), Some(hook)) = (checkpoint_iteration, hook) {
        (hook.0)(it);
    }
    StefError::Cancelled {
        iteration,
        deadline: token.deadline_expired(),
        checkpoint_iteration,
    }
}

/// Runs CPD-ALS on `engine`.
///
/// Numerical failures are recovered per [`CpdOptions::recovery`] or
/// reported as a typed [`StefError`]; this function does not panic on
/// bad numerics, singular systems, or corrupt checkpoints.
pub fn cpd_als<E: MttkrpEngine + ?Sized>(
    engine: &mut E,
    opts: &CpdOptions,
) -> Result<CpdResult, StefError> {
    let dims = engine.dims().to_vec();
    let d = dims.len();
    let r = opts.rank;
    if r == 0 {
        return Err(StefError::Input("rank must be at least 1".into()));
    }
    let sweep = engine.sweep_order();
    if sweep.len() != d {
        return Err(StefError::Input(format!(
            "sweep order covers {} modes, tensor has {d}",
            sweep.len()
        )));
    }
    let norm_t_sq = engine.norm_sq();
    if !norm_t_sq.is_finite() || norm_t_sq <= 0.0 {
        return Err(StefError::Input(format!(
            "tensor squared norm must be positive and finite, got {norm_t_sq}"
        )));
    }
    let norm_t = norm_t_sq.sqrt();

    let mut recovery = RecoveryEvents::default();
    let mut resumed_from = None;

    let (mut factors, mut lambda, mut fits, start_iter) = match &opts.resume {
        Some(cp) => {
            if cp.dims != dims {
                return Err(CheckpointError::Mismatch {
                    reason: format!("checkpoint dims {:?}, tensor dims {:?}", cp.dims, dims),
                }
                .into());
            }
            if cp.rank != r {
                return Err(CheckpointError::Mismatch {
                    reason: format!("checkpoint rank {}, requested rank {r}", cp.rank),
                }
                .into());
            }
            if !cp.factors.iter().all(mat_is_finite) || !slice_is_finite(&cp.lambda) {
                return Err(CheckpointError::Corrupt {
                    reason: "non-finite values in checkpoint state".into(),
                }
                .into());
            }
            resumed_from = Some(cp.iteration);
            (
                cp.factors.clone(),
                cp.lambda.clone(),
                cp.fits.clone(),
                cp.iteration,
            )
        }
        None => (
            init_factors(&dims, r, opts.seed),
            vec![1.0; r],
            Vec::new(),
            0,
        ),
    };
    let mut grams: Vec<Mat> = factors.iter().map(gram_full).collect();

    let mut converged = false;
    let mut irregular_solves = 0usize;
    let mut mttkrp_time = Duration::ZERO;
    let mut mode_seconds = vec![0.0f64; d];
    let start = Instant::now();
    let mut iterations = start_iter;
    let mut checkpoints_written = 0usize;
    let mut reinits_used = 0usize;
    let mut consecutive_drops = 0usize;
    let mut divergence_fallback_spent = false;
    // Cancel-time checkpointing: snapshot the end of every completed
    // iteration (only when both a token and a policy are configured —
    // the clone is not free) so an interrupt mid-sweep can still leave
    // a resumable, bit-exact snapshot behind.
    let snapshot_for_cancel = opts.cancel.is_some() && opts.checkpoint.is_some();
    let engine_name = engine.name();
    let mut last_good: Option<Checkpoint> = None;
    let mut telem = Collector::new();
    // Per-mode MTTKRP latency histograms, resolved before the ALS loop
    // (registration takes a lock and may allocate; the per-sweep
    // `observe` below is a few relaxed fetch_adds, preserving the
    // steady-state zero-alloc invariant).
    let mode_hists: Vec<&'static crate::metrics::Histogram> = (0..d)
        .map(|m| {
            crate::metrics::histogram(
                "stef_mttkrp_seconds",
                "Wall time of one MTTKRP pass, by target mode",
                &[("mode", crate::metrics::mode_label(m))],
                crate::metrics::TIME_BUCKETS,
            )
        })
        .collect();

    for it in start_iter..opts.max_iters {
        iterations = it + 1;
        if let Some(token) = &opts.cancel {
            if token.expired() {
                return Err(cancel_error(
                    token,
                    iterations,
                    &opts.checkpoint,
                    &last_good,
                    &opts.on_checkpoint,
                ));
            }
        }
        let mut last_mttkrp: Option<(usize, Mat)> = None;
        for &mode in &sweep {
            let t0 = Instant::now();
            let mut ahat = guarded_mttkrp(engine, &factors, mode, iterations)?;
            let dt = t0.elapsed();
            mttkrp_time += dt;
            mode_seconds[mode] += dt.as_secs_f64();
            mode_hists[mode].observe(dt.as_secs_f64());
            crate::flight::record(
                crate::flight::FlightEvent::ModeSweep,
                mode as u64,
                dt.as_nanos() as u64,
            );
            telem.record_mode(
                mode,
                dt.as_secs_f64(),
                engine.last_mode_stats(mode),
                engine.predicted_mode_traffic(mode),
            );

            if !mat_is_finite(&ahat) {
                // Rung 3 first: a non-finite MTTKRP from finite factors
                // points at corrupt memoized state.
                let mut recovered = false;
                if opts.recovery.enabled
                    && opts.recovery.allow_engine_fallback
                    && engine.degrade_to_unmemoized()
                {
                    recovery.record(
                        iterations,
                        Some(mode),
                        RecoveryAction::EngineFallback,
                        "non-finite MTTKRP output; disabled memoization and recomputed",
                    );
                    let t0 = Instant::now();
                    ahat = guarded_mttkrp(engine, &factors, mode, iterations)?;
                    let dt = t0.elapsed();
                    mttkrp_time += dt;
                    mode_seconds[mode] += dt.as_secs_f64();
                    recovered = mat_is_finite(&ahat);
                }
                if !recovered && opts.recovery.enabled {
                    // Rung 2: a poisoned *input* factor makes every
                    // engine produce non-finite output; reinit them.
                    let poisoned: Vec<usize> = (0..d)
                        .filter(|&m| m != mode && !mat_is_finite(&factors[m]))
                        .collect();
                    if !poisoned.is_empty()
                        && reinits_used + poisoned.len() <= opts.recovery.max_factor_reinits
                    {
                        for &m in &poisoned {
                            reinit_factor(
                                &mut factors,
                                &mut grams,
                                &mut lambda,
                                m,
                                r,
                                opts.seed,
                                &mut reinits_used,
                                &mut recovery,
                                iterations,
                                "non-finite input factor to MTTKRP",
                            );
                        }
                        // Saved partials derived from the discarded
                        // factors are stale; drop memoization.
                        if opts.recovery.allow_engine_fallback && engine.degrade_to_unmemoized() {
                            recovery.record(
                                iterations,
                                Some(mode),
                                RecoveryAction::EngineFallback,
                                "memoized partials stale after factor re-init",
                            );
                        }
                        let t0 = Instant::now();
                        ahat = guarded_mttkrp(engine, &factors, mode, iterations)?;
                        let dt = t0.elapsed();
                        mttkrp_time += dt;
                        mode_seconds[mode] += dt.as_secs_f64();
                        mode_hists[mode].observe(dt.as_secs_f64());
                        telem.record_mode(
                            mode,
                            dt.as_secs_f64(),
                            engine.last_mode_stats(mode),
                            engine.predicted_mode_traffic(mode),
                        );
                        recovered = mat_is_finite(&ahat);
                    }
                }
                if !recovered {
                    return Err(StefError::NonFinite {
                        iteration: iterations,
                        mode: Some(mode),
                        what: "MTTKRP output",
                    });
                }
            }

            // V = Hadamard of all Grams except `mode`.
            let build_v = |grams: &[Mat]| {
                let mut v = Mat::from_fn(r, r, |_, _| 1.0);
                for (m, g) in grams.iter().enumerate() {
                    if m != mode {
                        hadamard_inplace(&mut v, g);
                    }
                }
                v
            };
            let mut v = build_v(&grams);
            if !mat_is_finite(&v) {
                let poisoned: Vec<usize> = (0..d)
                    .filter(|&m| m != mode && !mat_is_finite(&grams[m]))
                    .collect();
                if opts.recovery.enabled
                    && !poisoned.is_empty()
                    && reinits_used + poisoned.len() <= opts.recovery.max_factor_reinits
                {
                    for &m in &poisoned {
                        reinit_factor(
                            &mut factors,
                            &mut grams,
                            &mut lambda,
                            m,
                            r,
                            opts.seed,
                            &mut reinits_used,
                            &mut recovery,
                            iterations,
                            "non-finite Gram matrix",
                        );
                    }
                    if opts.recovery.allow_engine_fallback && engine.degrade_to_unmemoized() {
                        recovery.record(
                            iterations,
                            Some(mode),
                            RecoveryAction::EngineFallback,
                            "memoized partials stale after factor re-init",
                        );
                    }
                    v = build_v(&grams);
                }
                if !mat_is_finite(&v) {
                    return Err(StefError::NonFinite {
                        iteration: iterations,
                        mode: Some(mode),
                        what: "Gram system",
                    });
                }
            }

            let mut newf = ahat.clone();
            match try_solve_gram_system(&v, &mut newf) {
                Ok(method) => {
                    if method != SolveMethod::Cholesky {
                        irregular_solves += 1;
                    }
                }
                Err(first_err) => {
                    if !opts.recovery.enabled {
                        return Err(StefError::Solve {
                            iteration: iterations,
                            mode,
                            source: first_err,
                        });
                    }
                    // Rung 1: retry with escalating extra ridge, scaled
                    // to the system's diagonal magnitude.
                    let diag_mean =
                        (0..r).map(|i| v[(i, i)].abs()).sum::<f64>() / r as f64;
                    let scale = if diag_mean > 0.0 { diag_mean } else { 1.0 };
                    let mut last_err = first_err;
                    let mut solved = false;
                    for k in 1..=opts.recovery.max_ridge_retries {
                        let ridge = scale * 1e-8 * 100f64.powi(k as i32);
                        recovery.record(
                            iterations,
                            Some(mode),
                            RecoveryAction::RidgeRetry,
                            format!("solve failed ({last_err}); retrying with ridge {ridge:.3e}"),
                        );
                        newf = ahat.clone();
                        match try_solve_gram_system_ridged(&v, &mut newf, ridge) {
                            Ok(_) => {
                                irregular_solves += 1;
                                solved = true;
                                break;
                            }
                            Err(e) => last_err = e,
                        }
                    }
                    if !solved {
                        return Err(StefError::Solve {
                            iteration: iterations,
                            mode,
                            source: last_err,
                        });
                    }
                }
            }

            let norm_kind = if it == 0 {
                ColumnNorm::Two
            } else {
                ColumnNorm::MaxClamped
            };
            normalize_columns(&mut newf, &mut lambda, norm_kind);
            grams[mode] = gram_full(&newf);
            factors[mode] = newf;
            last_mttkrp = Some((mode, ahat));

            // Chunk-granularity cancellation inside the kernels only
            // stops the fan-outs; the sweep observes it here, after
            // every mode update, so a mid-sweep cancel is bounded by
            // one MTTKRP rather than one iteration.
            if let Some(token) = &opts.cancel {
                if token.expired() {
                    return Err(cancel_error(
                        token,
                        iterations,
                        &opts.checkpoint,
                        &last_good,
                        &opts.on_checkpoint,
                    ));
                }
            }
        }

        // Fit via the last mode's MTTKRP result.
        let (last_mode, ahat) = last_mttkrp.expect("at least one mode");
        let inner: f64 = {
            // Σ_r λ_r Σ_i Ā[i,r]·A[i,r]
            let mut per_col = vec![0.0; r];
            let a = &factors[last_mode];
            for i in 0..a.rows() {
                let (arow, hrow) = (a.row(i), ahat.row(i));
                for ((p, &x), &y) in per_col.iter_mut().zip(arow).zip(hrow) {
                    *p += x * y;
                }
            }
            per_col.iter().zip(&lambda).map(|(&p, &l)| p * l).sum()
        };
        let norm_model_sq: f64 = {
            let mut had = Mat::from_fn(r, r, |_, _| 1.0);
            for g in &grams {
                hadamard_inplace(&mut had, g);
            }
            let ll = Mat::from_fn(r, r, |i, j| lambda[i] * lambda[j]);
            frob_inner(&had, &ll)
        };
        let resid_sq = (norm_t_sq + norm_model_sq - 2.0 * inner).max(0.0);
        let fit = 1.0 - resid_sq.sqrt() / norm_t;
        if !fit.is_finite() {
            return Err(StefError::NonFinite {
                iteration: iterations,
                mode: None,
                what: "fit",
            });
        }

        // Divergence watch: exact ALS never decreases the fit, so a
        // sustained drop is always a numerical symptom.
        let prev = fits.last().copied();
        if let Some(p) = prev {
            if fit < p - 1e-9 {
                consecutive_drops += 1;
            } else {
                consecutive_drops = 0;
            }
            if opts.recovery.divergence_window > 0
                && consecutive_drops >= opts.recovery.divergence_window
            {
                recovery.record(
                    iterations,
                    None,
                    RecoveryAction::DivergenceAlarm,
                    format!("fit fell {consecutive_drops} consecutive iterations"),
                );
                let mut handled = false;
                if opts.recovery.enabled
                    && opts.recovery.allow_engine_fallback
                    && !divergence_fallback_spent
                {
                    divergence_fallback_spent = true;
                    if engine.degrade_to_unmemoized() {
                        recovery.record(
                            iterations,
                            None,
                            RecoveryAction::EngineFallback,
                            "divergence; disabled memoization",
                        );
                        handled = true;
                    }
                }
                if handled {
                    consecutive_drops = 0;
                } else {
                    return Err(StefError::Diverged {
                        iteration: iterations,
                        drops: consecutive_drops,
                        last_fit: fit,
                    });
                }
            }
        }
        fits.push(fit);
        telem.end_iteration(iterations, fit, engine.telemetry_alloc_events());
        crate::flight::record(
            crate::flight::FlightEvent::IterDone,
            iterations as u64,
            fit.to_bits(),
        );

        if let Some(policy) = &opts.checkpoint {
            if policy.every > 0 && iterations % policy.every == 0 {
                let cp = Checkpoint {
                    version: CHECKPOINT_VERSION,
                    iteration: iterations,
                    seed: opts.seed,
                    rank: r,
                    dims: dims.clone(),
                    engine: engine.name(),
                    lambda: lambda.clone(),
                    fits: fits.clone(),
                    factors: factors.clone(),
                };
                cp.save(&policy.path)?;
                checkpoints_written += 1;
                if let Some(hook) = &opts.on_checkpoint {
                    (hook.0)(iterations);
                }
            }
        }

        if snapshot_for_cancel {
            last_good = Some(Checkpoint {
                version: CHECKPOINT_VERSION,
                iteration: iterations,
                seed: opts.seed,
                rank: r,
                dims: dims.clone(),
                engine: engine_name.clone(),
                lambda: lambda.clone(),
                fits: fits.clone(),
                factors: factors.clone(),
            });
        }

        if let Some(p) = prev {
            if (fit - p).abs() < opts.tol {
                converged = true;
                break;
            }
        }
    }

    Ok(CpdResult {
        factors,
        lambda,
        fits,
        iterations,
        converged,
        mttkrp_time,
        total_time: start.elapsed(),
        irregular_solves,
        mode_seconds,
        recovery,
        checkpoints_written,
        resumed_from,
        degradations: engine.degradations(),
        telemetry: {
            let mut report = telem.finish();
            report.engine = engine.name();
            report.numa_nodes = engine.numa_nodes().max(1);
            report
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ReferenceEngine, Stef};
    use crate::fault::{Fault, FaultyEngine};
    use crate::options::StefOptions;
    use sptensor::CooTensor;

    fn pseudo_tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = vec![0u32; dims.len()];
        for _ in 0..nnz {
            for (c, &d) in coord.iter_mut().zip(dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            t.push(&coord, ((x >> 40) % 9) as f64 * 0.3 + 0.4);
        }
        t.sort_dedup();
        t
    }

    #[test]
    fn init_factors_is_deterministic_and_positive() {
        let a = init_factors(&[5, 6], 3, 7);
        let b = init_factors(&[5, 6], 3, 7);
        assert_eq!(a[0].as_slice(), b[0].as_slice());
        assert!(a[1].as_slice().iter().all(|&v| (0.1..1.1).contains(&v)));
        let c = init_factors(&[5, 6], 3, 8);
        assert_ne!(a[0].as_slice(), c[0].as_slice());
    }

    #[test]
    fn fit_improves_monotonically_on_reference_engine() {
        let t = pseudo_tensor(&[10, 12, 8], 200, 1);
        let mut engine = ReferenceEngine::new(t);
        let result = cpd_als(&mut engine, &CpdOptions::new(4)).expect("healthy run");
        assert!(result.iterations >= 2);
        // ALS fit is non-decreasing up to numerical noise.
        for w in result.fits.windows(2) {
            assert!(w[1] >= w[0] - 1e-8, "fit decreased: {:?}", result.fits);
        }
        assert!(result.final_fit() > 0.0, "fits {:?}", result.fits);
        assert_eq!(result.recovery.total(), 0);
        assert_eq!(result.checkpoints_written, 0);
        assert_eq!(result.resumed_from, None);
    }

    #[test]
    fn stef_and_reference_agree_exactly() {
        // Same init seed, same sweep order -> identical iterates (up to
        // fp tolerance), a strong end-to-end correctness check.
        let t = pseudo_tensor(&[10, 12, 8], 300, 2);
        let mut stef = Stef::prepare(&t, StefOptions::new(4));
        let sweep = stef.sweep_order();
        let mut reference = SweepOrderedReference {
            inner: ReferenceEngine::new(t),
            sweep,
        };
        let opts = CpdOptions {
            rank: 4,
            max_iters: 5,
            tol: 0.0,
            seed: 11,
            ..CpdOptions::new(4)
        };
        let rs = cpd_als(&mut stef, &opts).expect("stef run");
        let rr = cpd_als(&mut reference, &opts).expect("reference run");
        assert_eq!(rs.fits.len(), rr.fits.len());
        for (a, b) in rs.fits.iter().zip(&rr.fits) {
            assert!((a - b).abs() < 1e-8, "fits diverged: {a} vs {b}");
        }
    }

    /// Reference engine forced to use a specific sweep order (so it can
    /// be compared iterate-by-iterate against STeF).
    struct SweepOrderedReference {
        inner: ReferenceEngine,
        sweep: Vec<usize>,
    }

    impl MttkrpEngine for SweepOrderedReference {
        fn dims(&self) -> &[usize] {
            self.inner.dims()
        }
        fn name(&self) -> String {
            "reference-ordered".into()
        }
        fn sweep_order(&self) -> Vec<usize> {
            self.sweep.clone()
        }
        fn norm_sq(&self) -> f64 {
            self.inner.norm_sq()
        }
        fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
            self.inner.mttkrp(factors, mode)
        }
    }

    #[test]
    fn converges_on_easy_tensor() {
        // A tensor that is exactly rank-1 (all values equal on a block).
        let mut t = CooTensor::new(vec![6, 6, 6]);
        for i in 0..3u32 {
            for j in 0..3u32 {
                for k in 0..3u32 {
                    t.push(&[i, j, k], 2.0);
                }
            }
        }
        let mut engine = ReferenceEngine::new(t);
        let mut opts = CpdOptions::new(2);
        opts.max_iters = 60;
        let result = cpd_als(&mut engine, &opts).expect("healthy run");
        assert!(
            result.final_fit() > 0.999,
            "rank-1 block should be recovered, fit {}",
            result.final_fit()
        );
        assert!(result.converged);
    }

    #[test]
    fn result_reports_timing_and_counts() {
        let t = pseudo_tensor(&[8, 8, 8], 150, 3);
        let mut engine = ReferenceEngine::new(t);
        let result = cpd_als(&mut engine, &CpdOptions::new(3)).expect("healthy run");
        assert!(result.total_time >= result.mttkrp_time);
        assert_eq!(result.fits.len(), result.iterations);
    }

    #[test]
    fn mode_seconds_cover_all_modes() {
        let t = pseudo_tensor(&[8, 8, 8], 150, 5);
        let mut engine = ReferenceEngine::new(t);
        let result = cpd_als(&mut engine, &CpdOptions::new(3)).expect("healthy run");
        assert_eq!(result.mode_seconds.len(), 3);
        assert!(result.mode_seconds.iter().all(|&s| s >= 0.0));
        let sum: f64 = result.mode_seconds.iter().sum();
        assert!((sum - result.mttkrp_time.as_secs_f64()).abs() < 0.05 * sum.max(1e-6) + 1e-4);
    }

    #[test]
    fn lambda_matches_rank() {
        let t = pseudo_tensor(&[8, 8, 8], 150, 4);
        let mut engine = ReferenceEngine::new(t);
        let result = cpd_als(&mut engine, &CpdOptions::new(5)).expect("healthy run");
        assert_eq!(result.lambda.len(), 5);
        assert!(result.lambda.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn zero_rank_is_a_typed_input_error() {
        let t = pseudo_tensor(&[6, 6, 6], 50, 6);
        let mut engine = ReferenceEngine::new(t);
        let mut opts = CpdOptions::new(1);
        opts.rank = 0;
        match cpd_als(&mut engine, &opts) {
            Err(StefError::Input(_)) => {}
            other => panic!("expected Input error, got {other:?}"),
        }
    }

    #[test]
    fn nan_injection_recovers_via_engine_fallback() {
        // One NaN in a memoized engine's MTTKRP output: the driver must
        // degrade to the unmemoized path, recompute, and finish with the
        // same fit as a clean run.
        let t = pseudo_tensor(&[10, 9, 8], 300, 7);
        let opts = CpdOptions {
            max_iters: 6,
            tol: 0.0,
            ..CpdOptions::new(3)
        };
        // Force memoization on: the fallback rung only exists when the
        // engine has a memoized path to give up.
        let mut stef_opts = StefOptions::new(3);
        stef_opts.memo = crate::options::MemoPolicy::SaveAll;
        let mut clean = Stef::prepare(&t, stef_opts.clone());
        let clean_fit = cpd_als(&mut clean, &opts).expect("clean run").final_fit();

        let stef = Stef::prepare(&t, stef_opts);
        let mut faulty = FaultyEngine::new(
            stef,
            vec![Fault::MttkrpOutputOnce {
                at: 4,
                row: 0,
                col: 0,
                value: f64::NAN,
            }],
        )
        .with_clear_on_degrade();
        let result = cpd_als(&mut faulty, &opts).expect("recovered run");
        assert!(result.recovery.engine_fallbacks >= 1, "{:?}", result.recovery);
        assert!(
            (result.final_fit() - clean_fit).abs() < 1e-6,
            "recovered fit {} vs clean fit {clean_fit}",
            result.final_fit()
        );
    }

    #[test]
    fn persistent_fault_ends_in_typed_error_not_panic() {
        let t = pseudo_tensor(&[8, 8, 8], 200, 8);
        let mut faulty = FaultyEngine::new(
            ReferenceEngine::new(t),
            vec![Fault::MttkrpOutputAlways {
                from: 0,
                row: 0,
                col: 0,
                value: f64::NAN,
            }],
        );
        match cpd_als(&mut faulty, &CpdOptions::new(3)) {
            Err(StefError::NonFinite { iteration: 1, .. }) => {}
            other => panic!("expected NonFinite at iteration 1, got {other:?}"),
        }
    }

    /// Wraps the reference engine and, after `clean_calls` MTTKRP calls,
    /// blends the output of every mode *except the last in sweep order*
    /// toward a fixed junk matrix with a weight that grows per call. The
    /// corrupted modes' factors drift away from the tensor's structure,
    /// so the fit genuinely decreases; the last mode stays clean so the
    /// driver's fit formula (which reuses the last mode's MTTKRP) keeps
    /// reporting the true fit. Pure scaling would not work here: column
    /// normalization absorbs it without ever moving the factors.
    struct DriftEngine {
        inner: ReferenceEngine,
        calls: usize,
        clean_calls: usize,
    }

    impl MttkrpEngine for DriftEngine {
        fn dims(&self) -> &[usize] {
            self.inner.dims()
        }
        fn name(&self) -> String {
            "drift".into()
        }
        fn sweep_order(&self) -> Vec<usize> {
            self.inner.sweep_order()
        }
        fn norm_sq(&self) -> f64 {
            self.inner.norm_sq()
        }
        fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
            self.calls += 1;
            let mut out = self.inner.mttkrp(factors, mode);
            let last = *self.inner.sweep_order().last().expect("nonempty sweep");
            if self.calls > self.clean_calls && mode != last {
                let e = (0.04 * (self.calls - self.clean_calls) as f64).min(0.95);
                for i in 0..out.rows() {
                    for j in 0..out.cols() {
                        let junk = ((i * 31 + j * 17) % 13) as f64 - 6.0;
                        out[(i, j)] = (1.0 - e) * out[(i, j)] + e * junk;
                    }
                }
            }
            out
        }
    }

    #[test]
    fn divergence_is_a_typed_error_when_fallback_unavailable() {
        let t = pseudo_tensor(&[8, 8, 8], 200, 9);
        let mut engine = DriftEngine {
            inner: ReferenceEngine::new(t),
            calls: 0,
            clean_calls: 9,
        };
        let mut opts = CpdOptions::new(3);
        opts.max_iters = 30;
        opts.tol = 0.0;
        // DriftEngine has no memoization, so the fallback rung cannot
        // fire and the run must end in a typed divergence error.
        match cpd_als(&mut engine, &opts) {
            Err(StefError::Diverged { drops, .. }) => {
                assert!(drops >= opts.recovery.divergence_window);
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        let dir = std::env::temp_dir().join("stef-cpd-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");

        let t = pseudo_tensor(&[10, 9, 8], 300, 10);
        let base = CpdOptions {
            max_iters: 8,
            tol: 0.0,
            ..CpdOptions::new(3)
        };

        // Uninterrupted run.
        let mut full_engine = Stef::prepare(&t, StefOptions::new(3));
        let full = cpd_als(&mut full_engine, &base).expect("full run");

        // Interrupted at iteration 4 (checkpoint every 2 keeps the last
        // snapshot at 4), then resumed to completion.
        let mut opts_a = base.clone();
        opts_a.max_iters = 4;
        opts_a.checkpoint = Some(CheckpointPolicy::new(&path, 2));
        let mut engine_a = Stef::prepare(&t, StefOptions::new(3));
        let partial = cpd_als(&mut engine_a, &opts_a).expect("partial run");
        assert_eq!(partial.checkpoints_written, 2);

        let cp = Checkpoint::load(&path).expect("load checkpoint");
        assert_eq!(cp.iteration, 4);
        let mut opts_b = base.clone();
        opts_b.resume = Some(cp);
        let mut engine_b = Stef::prepare(&t, StefOptions::new(3));
        let resumed = cpd_als(&mut engine_b, &opts_b).expect("resumed run");

        assert_eq!(resumed.resumed_from, Some(4));
        assert_eq!(resumed.fits.len(), full.fits.len());
        for (a, b) in resumed.fits.iter().zip(&full.fits) {
            assert!((a - b).abs() < 1e-8, "fits diverged: {a} vs {b}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_with_wrong_rank_is_a_mismatch() {
        let t = pseudo_tensor(&[8, 8, 8], 200, 11);
        let mut engine = ReferenceEngine::new(t);
        let cp = Checkpoint {
            version: CHECKPOINT_VERSION,
            iteration: 2,
            seed: 42,
            rank: 5,
            dims: vec![8, 8, 8],
            engine: "reference".into(),
            lambda: vec![1.0; 5],
            fits: vec![0.1, 0.2],
            factors: (0..3).map(|_| Mat::from_fn(8, 5, |_, _| 0.5)).collect(),
        };
        let mut opts = CpdOptions::new(3);
        opts.resume = Some(cp);
        match cpd_als(&mut engine, &opts) {
            Err(StefError::Checkpoint(CheckpointError::Mismatch { .. })) => {}
            other => panic!("expected checkpoint mismatch, got {other:?}"),
        }
    }
}
