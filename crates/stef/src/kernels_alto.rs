//! MTTKRP over the linearized (ALTO-style) format.
//!
//! One flat pass over the sorted non-zeros computes any mode's MTTKRP:
//! per entry the kernel delinearizes the packed index into coordinates,
//! builds the Khatri–Rao product of the `d-1` input factor rows in two
//! ping-pong scratch rows, and emits the scaled row into the output.
//! There is no fiber tree and no mode-specific data structure — the
//! same index array serves every mode, which is the whole point on
//! irregular/hyper-sparse tensors where CSF fibers collapse to one
//! non-zero each.
//!
//! ## Execution strategy
//!
//! * **Thread partitioning over linearized ranges.** Logical thread
//!   `th` of `T` owns entries `[th·nnz/T, (th+1)·nnz/T)` — contiguous
//!   in the sorted linear order, so each thread's factor accesses
//!   inherit the interleaving's multi-mode locality.
//! * **Accumulation reuses the CSF machinery.** Output conflicts are
//!   resolved exactly like `kernels::modeu_with`: privatized per-thread
//!   copies reduced in logical-thread order (bitwise deterministic for
//!   any worker count), or atomic CAS adds on the shared output — via
//!   the same [`Emitter`] implementations. Serial executors take the
//!   same short-cuts (thread 0 emits straight into `out`; plain adds
//!   replace CAS sweeps) with the same bit-for-bit argument.
//! * **Allocation-free.** All scratch comes from the engine-owned
//!   [`Workspace`] arenas; a pass performs zero heap allocations once
//!   the workspace is warm.
//! * **Delinearization dispatch.** The portable path walks each mode's
//!   bit-position list. On x86-64 with BMI2 the per-mode masks feed
//!   `pext` — one instruction per 64-bit half — selected per thread
//!   alongside the [`RowKernels`] SIMD token, inside the same
//!   `#[target_feature]` region so everything inlines. Delinearization
//!   is integer-only, so the choice cannot affect float results.

use crate::kernels::{AtomicEmitter, Emitter, PrivEmitter, ResolvedAccum};
use crate::runtime::Executor;
use crate::sync::{SharedRows, SharedSlice};
use crate::workspace::Workspace;
use linalg::simd::{self, RowKernels};
use linalg::Mat;
use sptensor::linearize::{LinIndex, LinStore, Linearized};

/// How many entries ahead the emit loop prefetches the output row.
const SCATTER_PREFETCH: usize = 4;

/// Computes the mode-`mode` MTTKRP of `lin` into `out`
/// (`dims[mode] × R`), fanning out `nthreads` logical threads on `rt`.
/// `factors` are in natural mode order (linearization does not permute
/// modes); `factors[mode]` is ignored as an input but must still have
/// the right shape. Allocation-free once `ws` is warm.
#[allow(clippy::too_many_arguments)]
pub fn alto_mode_with(
    lin: &Linearized,
    factors: &[&Mat],
    mode: usize,
    nthreads: usize,
    accum: ResolvedAccum,
    rt: &Executor,
    ws: &mut Workspace,
    out: &mut Mat,
) {
    let d = lin.ndim();
    assert!(d >= 2, "tensors have at least 2 modes");
    assert!(mode < d, "mode out of range");
    assert_eq!(factors.len(), d, "one factor per mode");
    let r = factors[0].cols();
    for (m, f) in factors.iter().enumerate() {
        assert_eq!(f.rows(), lin.dims()[m], "factor {m} has wrong row count");
        assert_eq!(f.cols(), r, "factor {m} has wrong rank");
    }
    let n_u = lin.dims()[mode];
    assert_eq!(out.rows(), n_u);
    assert_eq!(out.cols(), r);
    let nthreads = nthreads.max(1);
    let priv_rows = if accum == ResolvedAccum::Privatized {
        n_u
    } else {
        0
    };
    ws.ensure(d, r, nthreads, priv_rows);

    match lin.store() {
        LinStore::Narrow(idx) => run(lin, idx, factors, mode, nthreads, accum, rt, ws, out),
        LinStore::Wide(idx) => run(lin, idx, factors, mode, nthreads, accum, rt, ws, out),
    }
}

/// The store-width-monomorphized body of [`alto_mode_with`].
#[allow(clippy::too_many_arguments)]
fn run<W: LinIndex>(
    lin: &Linearized,
    idx: &[W],
    factors: &[&Mat],
    mode: usize,
    nthreads: usize,
    accum: ResolvedAccum,
    rt: &Executor,
    ws: &mut Workspace,
    out: &mut Mat,
) {
    let r = out.cols();
    let n_u = out.rows();
    let nnz = idx.len();
    let vals = lin.vals();
    let parts = ws.parts();
    let (rs, astride) = (parts.row_stride, parts.arena_stride);
    let arena = SharedSlice::new(&mut parts.scratch[..nthreads * astride]);
    let span = |th: usize| (th * nnz / nthreads, (th + 1) * nnz / nthreads);

    match accum {
        ResolvedAccum::Privatized => {
            let pstride = parts.priv_stride;
            if rt.is_serial() {
                // Same two-copy folding as `modeu_with`: thread 0 emits
                // straight into `out`, later threads reuse one scratch
                // copy folded in before the next starts — element-wise
                // sums in logical-thread order, bit-identical to the
                // chunk-parallel reduction below.
                out.fill_zero();
                let flat = SharedSlice::new(out.as_mut_slice());
                let pool = SharedSlice::new(&mut parts.priv_buf[..pstride]);
                rt.fanout(nthreads, |th| {
                    // SAFETY: per-thread arena spans are disjoint; the
                    // output and the single scratch copy are shared, but
                    // the serial executor runs logical threads
                    // sequentially, so no two `&mut` borrows are live at
                    // once.
                    let scr = unsafe { arena.range_mut(th * astride, (th + 1) * astride) };
                    let (lo, hi) = span(th);
                    if th == 0 {
                        let local = unsafe { flat.range_mut(0, n_u * r) };
                        let mut em = PrivEmitter { local, r };
                        alto_thread(lin, idx, vals, factors, mode, lo, hi, scr, rs, &mut em);
                    } else {
                        let local = unsafe { pool.range_mut(0, n_u * r) };
                        local.fill(0.0);
                        let mut em = PrivEmitter { local, r };
                        alto_thread(lin, idx, vals, factors, mode, lo, hi, scr, rs, &mut em);
                        let dst = unsafe { flat.range_mut(0, n_u * r) };
                        let src = unsafe { pool.range(0, n_u * r) };
                        for (o, &v) in dst.iter_mut().zip(src) {
                            *o += v;
                        }
                    }
                });
                return;
            }
            let pool = SharedSlice::new(&mut parts.priv_buf[..nthreads * pstride]);
            rt.fanout(nthreads, |th| {
                // SAFETY: per-thread spans are disjoint by construction.
                let scr = unsafe { arena.range_mut(th * astride, (th + 1) * astride) };
                let local = unsafe { pool.range_mut(th * pstride, th * pstride + n_u * r) };
                local.fill(0.0);
                let mut em = PrivEmitter { local, r };
                let (lo, hi) = span(th);
                alto_thread(lin, idx, vals, factors, mode, lo, hi, scr, rs, &mut em);
            });
            if rt.cancelled() {
                // Part of the private pool may never have been written;
                // the caller abandons the output on observing the token.
                return;
            }
            // Chunk-parallel reduction in logical-thread order — same
            // code shape as `modeu_with`, same bitwise guarantee.
            let total = n_u * r;
            let out_slice = SharedSlice::new(out.as_mut_slice());
            rt.fanout(nthreads, |w| {
                let lo = w * total / nthreads;
                let hi = (w + 1) * total / nthreads;
                // SAFETY: chunks [lo, hi) are disjoint across workers;
                // the pool is only read after the emit fanout joined.
                let dst = unsafe { out_slice.range_mut(lo, hi) };
                dst.copy_from_slice(unsafe { pool.range(lo, hi) });
                for t in 1..nthreads {
                    let src = unsafe { pool.range(t * pstride + lo, t * pstride + hi) };
                    for (o, &v) in dst.iter_mut().zip(src) {
                        *o += v;
                    }
                }
            });
        }
        ResolvedAccum::Atomic => {
            out.fill_zero();
            if rt.is_serial() {
                // Sequential logical threads: plain fused adds perform
                // the same additions in the same order as CAS sweeps.
                let flat = SharedSlice::new(out.as_mut_slice());
                rt.fanout(nthreads, |th| {
                    // SAFETY: serial executor — see the privatized arm.
                    let scr = unsafe { arena.range_mut(th * astride, (th + 1) * astride) };
                    let local = unsafe { flat.range_mut(0, n_u * r) };
                    let mut em = PrivEmitter { local, r };
                    let (lo, hi) = span(th);
                    alto_thread(lin, idx, vals, factors, mode, lo, hi, scr, rs, &mut em);
                });
            } else {
                let shared = SharedRows::new(out.as_mut_slice(), r);
                rt.fanout(nthreads, |th| {
                    // SAFETY: per-thread arena spans are disjoint; all
                    // output access is atomic.
                    let scr = unsafe { arena.range_mut(th * astride, (th + 1) * astride) };
                    let mut em = AtomicEmitter { shared: &shared };
                    let (lo, hi) = span(th);
                    alto_thread(lin, idx, vals, factors, mode, lo, hi, scr, rs, &mut em);
                });
            }
        }
    }
}

/// Delinearization strategy: recovers one mode's coordinate from a
/// packed index. Integer-only, so the choice never affects float
/// results — only how fast coordinates come out.
trait Delin: Copy {
    fn coord<W: LinIndex>(self, w: W, m: usize) -> u32;
}

/// Portable bit-gather over the mode's position list.
#[derive(Clone, Copy)]
struct ScalarDelin<'a> {
    lin: &'a Linearized,
}

impl Delin for ScalarDelin<'_> {
    #[inline(always)]
    fn coord<W: LinIndex>(self, w: W, m: usize) -> u32 {
        w.decode_mode(self.lin.positions(m))
    }
}

/// BMI2 `pext` over the per-mode masks: one parallel bit extract per
/// 64-bit half. Only constructed behind a runtime `bmi2` check.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy)]
struct PextDelin<'a> {
    masks: &'a [sptensor::linearize::ModeMask],
}

#[cfg(target_arch = "x86_64")]
impl Delin for PextDelin<'_> {
    #[inline(always)]
    fn coord<W: LinIndex>(self, w: W, m: usize) -> u32 {
        let mk = self.masks[m];
        // SAFETY: the dispatcher only builds a `PextDelin` after
        // `is_x86_feature_detected!("bmi2")`.
        unsafe {
            let lo = core::arch::x86_64::_pext_u64(w.lo(), mk.mask_lo);
            let hi = core::arch::x86_64::_pext_u64(w.hi(), mk.mask_hi);
            (lo | (hi << mk.lo_bits)) as u32
        }
    }
}

/// One logical thread's pass over its linearized range: one ISA +
/// delinearization dispatch, then the body monomorphized over kernel
/// set, delinearizer, store width and emitter.
#[allow(clippy::too_many_arguments)]
fn alto_thread<W: LinIndex, E: Emitter>(
    lin: &Linearized,
    idx: &[W],
    vals: &[f64],
    factors: &[&Mat],
    mode: usize,
    lo: usize,
    hi: usize,
    scr: &mut [f64],
    rs: usize,
    em: &mut E,
) {
    match simd::active() {
        #[cfg(target_arch = "x86_64")]
        simd::SimdPath::Avx2 => {
            if std::arch::is_x86_feature_detected!("bmi2") {
                // SAFETY: avx2+fma guaranteed by `active()`, bmi2 just
                // detected.
                unsafe { alto_thread_avx2_pext(lin, idx, vals, factors, mode, lo, hi, scr, rs, em) }
            } else {
                // SAFETY: `active()` never selects an unavailable path.
                unsafe { alto_thread_avx2(lin, idx, vals, factors, mode, lo, hi, scr, rs, em) }
            }
        }
        #[cfg(target_arch = "aarch64")]
        simd::SimdPath::Neon => alto_thread_body(
            simd::NeonK,
            ScalarDelin { lin },
            idx,
            vals,
            factors,
            mode,
            lo,
            hi,
            scr,
            rs,
            em,
        ),
        _ => alto_thread_body(
            simd::ScalarK,
            ScalarDelin { lin },
            idx,
            vals,
            factors,
            mode,
            lo,
            hi,
            scr,
            rs,
            em,
        ),
    }
}

/// AVX2+FMA+BMI2 instantiation: SIMD rows and `pext` delinearization
/// inline into one loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma,bmi2")]
#[allow(clippy::too_many_arguments)]
unsafe fn alto_thread_avx2_pext<W: LinIndex, E: Emitter>(
    lin: &Linearized,
    idx: &[W],
    vals: &[f64],
    factors: &[&Mat],
    mode: usize,
    lo: usize,
    hi: usize,
    scr: &mut [f64],
    rs: usize,
    em: &mut E,
) {
    // SAFETY: the caller dispatched on an available Avx2 path.
    let k = unsafe { simd::Avx2K::new_unchecked() };
    let dl = PextDelin { masks: lin.masks() };
    alto_thread_body(k, dl, idx, vals, factors, mode, lo, hi, scr, rs, em)
}

/// AVX2+FMA instantiation with portable delinearization (no BMI2).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn alto_thread_avx2<W: LinIndex, E: Emitter>(
    lin: &Linearized,
    idx: &[W],
    vals: &[f64],
    factors: &[&Mat],
    mode: usize,
    lo: usize,
    hi: usize,
    scr: &mut [f64],
    rs: usize,
    em: &mut E,
) {
    // SAFETY: the caller dispatched on an available Avx2 path.
    let k = unsafe { simd::Avx2K::new_unchecked() };
    let dl = ScalarDelin { lin };
    alto_thread_body(k, dl, idx, vals, factors, mode, lo, hi, scr, rs, em)
}

/// The monomorphized per-thread loop.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn alto_thread_body<K: RowKernels, DL: Delin, W: LinIndex, E: Emitter>(
    k: K,
    dl: DL,
    idx: &[W],
    vals: &[f64],
    factors: &[&Mat],
    mode: usize,
    lo: usize,
    hi: usize,
    scr: &mut [f64],
    rs: usize,
    em: &mut E,
) {
    let d = factors.len();
    let r = factors[0].cols();
    if d == 2 {
        // Matrix case: out[c_u] += val · B[c_other] — no KRP to build.
        let m = 1 - mode;
        let f = factors[m];
        for e in lo..hi {
            if e + SCATTER_PREFETCH < hi {
                em.prefetch(dl.coord(idx[e + SCATTER_PREFETCH], mode) as usize);
            }
            let w = idx[e];
            em.scaled(
                k,
                dl.coord(w, mode) as usize,
                vals[e],
                f.row(dl.coord(w, m) as usize),
            );
        }
        return;
    }
    // d >= 3: build val · ⊙_{m≠u,m<last} A⁽ᵐ⁾[c_m] in two ping-pong
    // scratch rows, fuse the final factor into the emit.
    let m0 = if mode == 0 { 1 } else { 0 };
    let mlast = if mode == d - 1 { d - 2 } else { d - 1 };
    let flast = factors[mlast];
    let (sa, sb) = scr.split_at_mut(rs);
    let mut a = &mut sa[..r];
    let mut b = &mut sb[..r];
    for e in lo..hi {
        if e + SCATTER_PREFETCH < hi {
            em.prefetch(dl.coord(idx[e + SCATTER_PREFETCH], mode) as usize);
        }
        let w = idx[e];
        k.scale_row_into(a, vals[e], factors[m0].row(dl.coord(w, m0) as usize));
        let mut m = m0 + 1;
        while m < mlast {
            if m != mode {
                k.krp_row(b, a, factors[m].row(dl.coord(w, m) as usize));
                core::mem::swap(&mut a, &mut b);
            }
            m += 1;
        }
        em.product(
            k,
            dl.coord(w, mode) as usize,
            a,
            flast.row(dl.coord(w, mlast) as usize),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{Executor, Runtime};
    use linalg::assert_mat_approx_eq;
    use sptensor::CooTensor;

    fn pseudo_tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = vec![0u32; dims.len()];
        for _ in 0..nnz {
            for (c, &d) in coord.iter_mut().zip(dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.push(&coord, ((x >> 40) % 7) as f64 * 0.25 + 0.5);
        }
        t.sort_dedup();
        t
    }

    fn rand_factors(dims: &[usize], r: usize, seed: u64) -> Vec<Mat> {
        let mut x = seed | 1;
        dims.iter()
            .map(|&n| {
                Mat::from_fn(n, r, |_, _| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 35) % 1000) as f64 / 500.0 - 1.0
                })
            })
            .collect()
    }

    fn check_all_modes(dims: &[usize], nnz: usize, rank: usize, nthreads: usize, seed: u64) {
        let t = pseudo_tensor(dims, nnz, seed);
        let lin = Linearized::build(&t).unwrap();
        let factors = rand_factors(dims, rank, seed.wrapping_add(1));
        let refs: Vec<&Mat> = factors.iter().collect();
        let d = dims.len();
        let mut ws = Workspace::new(d, rank, nthreads, *dims.iter().max().unwrap());
        let rt = Executor::new(Runtime::Pool, 2);
        for mode in 0..d {
            let expect = t.mttkrp_reference(&factors, mode);
            for accum in [ResolvedAccum::Privatized, ResolvedAccum::Atomic] {
                let mut out = Mat::zeros(dims[mode], rank);
                alto_mode_with(&lin, &refs, mode, nthreads, accum, &rt, &mut ws, &mut out);
                assert_mat_approx_eq(&out, &expect, 1e-9);
            }
        }
    }

    #[test]
    fn three_d_all_modes() {
        check_all_modes(&[8, 9, 10], 300, 4, 4, 1);
    }

    #[test]
    fn two_d_matrix_case() {
        check_all_modes(&[12, 15], 100, 4, 3, 2);
    }

    #[test]
    fn four_and_five_d() {
        check_all_modes(&[6, 7, 8, 5], 400, 3, 4, 3);
        check_all_modes(&[4, 5, 6, 4, 5], 500, 3, 6, 4);
    }

    #[test]
    fn single_thread_serial_executor() {
        let dims = [8usize, 9, 10];
        let t = pseudo_tensor(&dims, 300, 5);
        let lin = Linearized::build(&t).unwrap();
        let factors = rand_factors(&dims, 4, 6);
        let refs: Vec<&Mat> = factors.iter().collect();
        let mut ws = Workspace::new(3, 4, 3, 10);
        let rt = Executor::new(Runtime::Pool, 1);
        for mode in 0..3 {
            for accum in [ResolvedAccum::Privatized, ResolvedAccum::Atomic] {
                let mut out = Mat::zeros(dims[mode], 4);
                alto_mode_with(&lin, &refs, mode, 3, accum, &rt, &mut ws, &mut out);
                assert_mat_approx_eq(&out, &t.mttkrp_reference(&factors, mode), 1e-9);
            }
        }
    }

    #[test]
    fn wide_store_matches_reference() {
        // 5 × 13-bit modes = 65 total bits: forces the u128 store while
        // the factors stay small enough to allocate.
        let dims = [8192usize; 5];
        let t = pseudo_tensor(&dims, 400, 17);
        let lin = Linearized::build(&t).unwrap();
        assert_eq!(lin.index_elems(), 2, "must exercise the wide path");
        let factors = rand_factors(&dims, 3, 18);
        let refs: Vec<&Mat> = factors.iter().collect();
        let mut ws = Workspace::new(5, 3, 4, 8192);
        let rt = Executor::new(Runtime::Pool, 2);
        for mode in 0..5 {
            let expect = t.mttkrp_reference(&factors, mode);
            for accum in [ResolvedAccum::Privatized, ResolvedAccum::Atomic] {
                let mut out = Mat::zeros(dims[mode], 3);
                alto_mode_with(&lin, &refs, mode, 4, accum, &rt, &mut ws, &mut out);
                assert_mat_approx_eq(&out, &expect, 1e-9);
            }
        }
    }

    #[test]
    fn bitwise_identical_across_worker_counts() {
        let dims = [40usize, 9, 23];
        let t = pseudo_tensor(&dims, 800, 9);
        let lin = Linearized::build(&t).unwrap();
        let factors = rand_factors(&dims, 5, 10);
        let refs: Vec<&Mat> = factors.iter().collect();
        let nthreads = 6;
        let mut reference: Option<Vec<Mat>> = None;
        for workers in [1usize, 2, 4, 8] {
            let rt = Executor::new(Runtime::Pool, workers);
            let mut ws = Workspace::new(3, 5, nthreads, 40);
            let outs: Vec<Mat> = (0..3)
                .map(|mode| {
                    let mut out = Mat::zeros(dims[mode], 5);
                    alto_mode_with(
                        &lin,
                        &refs,
                        mode,
                        nthreads,
                        ResolvedAccum::Privatized,
                        &rt,
                        &mut ws,
                        &mut out,
                    );
                    out
                })
                .collect();
            match &reference {
                None => reference = Some(outs),
                Some(want) => {
                    for (mode, (a, b)) in outs.iter().zip(want).enumerate() {
                        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                            assert_eq!(
                                x.to_bits(),
                                y.to_bits(),
                                "mode {mode}, workers {workers}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn workspace_reuse_never_reallocates() {
        let dims = [10usize, 12, 14, 9];
        let t = pseudo_tensor(&dims, 600, 31);
        let lin = Linearized::build(&t).unwrap();
        let factors = rand_factors(&dims, 6, 32);
        let refs: Vec<&Mat> = factors.iter().collect();
        let nthreads = 4;
        let max_n = *dims.iter().max().unwrap();
        let mut ws = Workspace::new(4, 6, nthreads, max_n);
        let rt = Executor::new(Runtime::Pool, 2);
        for _round in 0..3 {
            for mode in 0..4 {
                let mut out = Mat::zeros(dims[mode], 6);
                for accum in [ResolvedAccum::Privatized, ResolvedAccum::Atomic] {
                    alto_mode_with(&lin, &refs, mode, nthreads, accum, &rt, &mut ws, &mut out);
                    assert_mat_approx_eq(&out, &t.mttkrp_reference(&factors, mode), 1e-9);
                }
            }
        }
        assert_eq!(ws.alloc_events(), 0, "passes must not grow the workspace");
    }
}
