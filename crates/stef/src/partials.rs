//! Storage for memoized partial MTTKRP results `P^(i)`.
//!
//! A memoized level `i` stores one length-`R` row per CSF node at that
//! level — the `t_i` vector of Algorithm 5 — plus `T` extra rows for
//! boundary replication (§II-D): thread `th` writes node `idx`'s row at
//! position `idx + th`. Because threads own increasing node ranges, the
//! shifted positions of two different (thread, node) pairs can never
//! collide, and a boundary node split between threads `th` and `th+1`
//! lands in two distinct rows whose *sum* is the true partial result.
//! Consumers run under the same schedule and read back exactly the rows
//! they wrote, so no reduction pass is ever needed.

use crate::schedule::Schedule;
use crate::sync::SharedRows;
use sptensor::Csf;

/// Buffers for every memoized level of one CSF.
pub struct PartialStore {
    rank: usize,
    nthreads: usize,
    /// `bufs[level]` is `Some` iff `P^(level)` is memoized; row count is
    /// `nfibers(level) + nthreads`.
    bufs: Vec<Option<Vec<f64>>>,
    /// Copy of the save flags for cheap queries.
    save: Vec<bool>,
}

impl PartialStore {
    /// Allocates buffers for the levels flagged in `save`.
    ///
    /// # Panics
    /// Panics if `save` flags the root (`0`) or the leaf (`d-1`) level:
    /// `P^(0)` *is* the mode-0 output and `P^(d-1)` is the tensor itself.
    pub fn allocate(csf: &Csf, save: &[bool], nthreads: usize, rank: usize) -> Self {
        match Self::try_allocate(csf, save, nthreads, rank) {
            Ok(store) => store,
            Err(bytes) => panic!("partial-store allocation of {bytes} bytes failed"),
        }
    }

    /// Fallible [`PartialStore::allocate`]: asks the allocator for each
    /// arena up front (`try_reserve`) and reports the failing request in
    /// bytes instead of aborting on OOM — the memory-budget machinery's
    /// last line of defense when the budget was set above what the
    /// machine can actually provide.
    pub fn try_allocate(
        csf: &Csf,
        save: &[bool],
        nthreads: usize,
        rank: usize,
    ) -> Result<Self, usize> {
        let d = csf.ndim();
        assert_eq!(save.len(), d);
        assert!(
            !save[0],
            "P^(0) is the mode-0 output, not a memoized partial"
        );
        assert!(!save[d - 1], "P^(d-1) is the tensor itself");
        let mut bufs = Vec::with_capacity(d);
        for (l, &s) in save.iter().enumerate() {
            if !s {
                bufs.push(None);
                continue;
            }
            let len = (csf.nfibers(l) + nthreads) * rank;
            // Probe with try_reserve for the typed-OOM contract, then
            // allocate fresh: `vec![0.0; len]` goes through
            // `alloc_zeroed`, whose lazily-mapped zero pages first-touch
            // on whichever worker writes them during the mode-0 pass —
            // NUMA-local placement — where `resize` on this (dispatching)
            // thread would fault every page onto its own node.
            let mut probe: Vec<f64> = Vec::new();
            probe
                .try_reserve_exact(len)
                .map_err(|_| len * std::mem::size_of::<f64>())?;
            drop(probe);
            bufs.push(Some(vec![0.0; len]));
        }
        Ok(PartialStore {
            rank,
            nthreads,
            bufs,
            save: save.to_vec(),
        })
    }

    /// An empty store (no level memoized) — used by the save-none
    /// configurations and the baselines.
    pub fn empty(d: usize, nthreads: usize, rank: usize) -> Self {
        PartialStore {
            rank,
            nthreads,
            bufs: (0..d).map(|_| None).collect(),
            save: vec![false; d],
        }
    }

    /// Whether level `l` is memoized.
    #[inline]
    pub fn is_saved(&self, l: usize) -> bool {
        self.save[l]
    }

    /// The save flags.
    #[inline]
    pub fn save_flags(&self) -> &[bool] {
        &self.save
    }

    /// Rank `R`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Thread count the row shifts were sized for.
    #[inline]
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Total bytes held by memoized buffers — the "Size of stored partial
    /// MTTKRP" column of the paper's Table II.
    pub fn bytes(&self) -> usize {
        self.bufs
            .iter()
            .flatten()
            .map(|b| b.len() * std::mem::size_of::<f64>())
            .sum()
    }

    /// Shared-row views for the kernels, one entry per level (`None`
    /// where not memoized). The views borrow `self` mutably, so the
    /// borrow checker serializes whole kernel invocations while the
    /// schedule guarantees row disjointness *within* one invocation.
    pub fn shared_views(&mut self) -> Vec<Option<SharedRows<'_>>> {
        let rank = self.rank;
        self.bufs
            .iter_mut()
            .map(|b| b.as_mut().map(|buf| SharedRows::new(buf, rank)))
            .collect()
    }

    /// **Fault-injection support**: fills every allocated buffer with
    /// `value` (typically NaN or Inf), simulating in-memory corruption of
    /// the memoized `P^(i)`. The store itself stays structurally valid —
    /// only the numbers are poisoned — which is exactly what a bad DIMM
    /// or a racing writer produces.
    pub fn poison_for_test(&mut self, value: f64) {
        for buf in self.bufs.iter_mut().flatten() {
            buf.fill(value);
        }
    }

    /// Reads the *reduced* (summed over thread replicas) row of node
    /// `idx` at `level`. O(T·R); diagnostics and tests only — kernels
    /// read per-thread replicas directly.
    pub fn reduced_row(&self, level: usize, idx: usize, schedule: &Schedule) -> Vec<f64> {
        let buf = self.bufs[level].as_ref().expect("level not memoized");
        let mut out = vec![0.0; self.rank];
        for th in 0..schedule.nthreads() {
            // Only threads whose range contains the node contributed.
            // A node contributed iff it lies inside the clamped range
            // at this level for some parent; range bounds suffice.
            let (lo, hi) = schedule.clamp(th, level, idx, idx + 1);
            if lo < hi {
                let base = (idx + th) * self.rank;
                for (o, &v) in out.iter_mut().zip(&buf[base..base + self.rank]) {
                    *o += v;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sptensor::{build_csf, CooTensor};

    fn csf3() -> Csf {
        let mut t = CooTensor::new(vec![4, 4, 4]);
        for i in 0..4u32 {
            for j in 0..3u32 {
                t.push(&[i, j, (i + j) % 4], 1.0);
                t.push(&[i, j, (i + j + 1) % 4], 2.0);
            }
        }
        t.sort_dedup();
        build_csf(&t, &[0, 1, 2])
    }

    #[test]
    fn allocates_only_saved_levels() {
        let csf = csf3();
        let store = PartialStore::allocate(&csf, &[false, true, false], 4, 8);
        assert!(!store.is_saved(0));
        assert!(store.is_saved(1));
        assert!(!store.is_saved(2));
        // 12 level-1 fibers + 4 replicas, rank 8, f64.
        assert_eq!(store.bytes(), (12 + 4) * 8 * 8);
    }

    #[test]
    fn empty_store_has_no_bytes() {
        let store = PartialStore::empty(4, 8, 16);
        assert_eq!(store.bytes(), 0);
        assert!(!store.is_saved(2));
    }

    #[test]
    #[should_panic(expected = "mode-0 output")]
    fn rejects_saving_root() {
        let csf = csf3();
        let _ = PartialStore::allocate(&csf, &[true, false, false], 2, 4);
    }

    #[test]
    #[should_panic(expected = "tensor itself")]
    fn rejects_saving_leaf() {
        let csf = csf3();
        let _ = PartialStore::allocate(&csf, &[false, false, true], 2, 4);
    }

    #[test]
    fn shared_views_expose_saved_levels() {
        let csf = csf3();
        let mut store = PartialStore::allocate(&csf, &[false, true, false], 2, 4);
        let views = store.shared_views();
        assert!(views[0].is_none());
        assert!(views[2].is_none());
        let v1 = views[1].as_ref().unwrap();
        assert_eq!(v1.rows(), 12 + 2);
        assert_eq!(v1.row_len(), 4);
    }

    #[test]
    fn shift_by_thread_id_never_collides() {
        // Formal property exercised numerically: for any two (th, idx)
        // pairs with th < th' and idx in th's range, idx' in th''s range,
        // idx + th != idx' + th' unless both refer to the same slot.
        let csf = csf3();
        let sched = Schedule::nnz_balanced(&csf, 3);
        let level = 1;
        let mut owners: Vec<Vec<(usize, usize)>> = vec![Vec::new(); csf.nfibers(level) + 3];
        for th in 0..3 {
            let (lo, hi) = sched.clamp(th, level, 0, csf.nfibers(level));
            for idx in lo..hi {
                owners[idx + th].push((th, idx));
            }
        }
        for (slot, writers) in owners.iter().enumerate() {
            assert!(
                writers.len() <= 1,
                "slot {slot} written by multiple (thread, node) pairs: {writers:?}"
            );
        }
    }
}
