//! The original (pre-vectorization) MTTKRP kernels, kept verbatim.
//!
//! This is the recursive, closure-based implementation the rewritten
//! [`crate::kernels`] replaced: per-call `Vec<Vec<f64>>` scratch, a
//! per-thread `n_u × R` privatized output allocated on every invocation,
//! a serial thread-order reduction, and a `&mut dyn FnMut` emit path.
//! It exists for two reasons:
//!
//! 1. **A/B benchmarking** — `BENCH_mttkrp.json` records this path next
//!    to the vectorized one so the perf trajectory has an honest
//!    baseline ([`crate::options::KernelPath::Legacy`] selects it at the
//!    engine level);
//! 2. **differential testing** — the rewritten kernels are property-
//!    tested against this implementation bit-for-bit (without FMA) and
//!    to 1e-12 against the paper transcriptions.
//!
//! Do not optimize this file; its value is being exactly what shipped
//! before the kernel rewrite.

use crate::kernels::{KernelCtx, ResolvedAccum};
use crate::partials::PartialStore;
use crate::sync::SharedRows;
use linalg::krp::{axpy_row, hadamard_row, krp_row};
use linalg::Mat;
use rayon::prelude::*;
use sptensor::Csf;

/// Computes `Ā⁽⁰⁾` and stores all partials flagged in `partials`
/// (original implementation).
pub fn mode0_pass(ctx: &KernelCtx<'_>, partials: &mut PartialStore, out: &mut Mat) {
    let d = ctx.csf.ndim();
    let r = ctx.rank;
    assert_eq!(out.rows(), ctx.csf.level_dims()[0]);
    assert_eq!(out.cols(), r);
    assert_eq!(partials.nthreads(), ctx.sched.nthreads());
    out.fill_zero();

    let views = partials.shared_views();
    let out_shared = SharedRows::new(out.as_mut_slice(), r);
    let nthreads = ctx.sched.nthreads();

    (0..nthreads).into_par_iter().for_each(|th| {
        let mut scratch: Vec<Vec<f64>> = (0..d).map(|_| vec![0.0; r]).collect();
        let (rlo, rhi) = ctx.sched.root_range(th);
        for idx0 in rlo..rhi {
            scratch[0].fill(0.0);
            if d == 1 {
                unreachable!("tensors have at least 2 modes");
            }
            walk_down(ctx, th, 1, idx0, &mut scratch, &views);
            let fid = ctx.csf.fids(0)[idx0] as usize;
            if ctx.sched.is_boundary(th, 0, idx0) {
                // Possibly shared with a neighbour: atomic accumulate.
                out_shared.atomic_add_row(fid, &scratch[0]);
            } else {
                // SAFETY: a non-boundary root node — and hence its output
                // row, since root fids are unique — is owned by exactly
                // this thread.
                let row = unsafe { out_shared.row_mut(fid) };
                row.copy_from_slice(&scratch[0]);
            }
        }
    });
}

/// Recursive worker of the mode-0 pass: accumulates the subtree
/// contribution of node `pindex`'s children into `scratch[level-1]`,
/// storing `t_level` rows into memoized buffers on the way up.
fn walk_down(
    ctx: &KernelCtx<'_>,
    th: usize,
    level: usize,
    pindex: usize,
    scratch: &mut [Vec<f64>],
    views: &[Option<SharedRows<'_>>],
) {
    let d = ctx.csf.ndim();
    let (lo, hi) = child_range(ctx.csf, level, pindex);
    let (clo, chi) = ctx.sched.clamp(th, level, lo, hi);
    if level == d - 1 {
        let fids = ctx.csf.fids(level);
        let vals = ctx.csf.vals();
        let t_prev = &mut scratch[level - 1];
        let leaf_factor = ctx.factors[level];
        for idx in clo..chi {
            axpy_row(t_prev, vals[idx], leaf_factor.row(fids[idx] as usize));
        }
        return;
    }
    let fids = ctx.csf.fids(level);
    for idx in clo..chi {
        scratch[level].fill(0.0);
        walk_down(ctx, th, level + 1, idx, scratch, views);
        if let Some(view) = &views[level] {
            // SAFETY: the shift-by-thread-id rule makes row `idx + th`
            // exclusively this thread's (see partials.rs).
            let dst = unsafe { view.row_mut(idx + th) };
            dst.copy_from_slice(&scratch[level]);
        }
        let (head, tail) = scratch.split_at_mut(level);
        hadamard_row(
            &mut head[level - 1],
            &tail[0],
            ctx.factors[level].row(fids[idx] as usize),
        );
    }
}

/// Computes `Ā⁽ᵘ⁾` for a non-root level `u` (original implementation).
pub fn modeu_pass(
    ctx: &KernelCtx<'_>,
    partials: &mut PartialStore,
    u: usize,
    accum: ResolvedAccum,
    use_saved: bool,
) -> Mat {
    let d = ctx.csf.ndim();
    assert!(u >= 1 && u < d, "mode0_pass handles the root level");
    assert_eq!(partials.nthreads(), ctx.sched.nthreads());
    let r = ctx.rank;
    let n_u = ctx.csf.level_dims()[u];
    let nthreads = ctx.sched.nthreads();
    let saved: Vec<bool> = if use_saved {
        partials.save_flags().to_vec()
    } else {
        vec![false; d]
    };
    let views = partials.shared_views();

    match accum {
        ResolvedAccum::Privatized => {
            let mut locals: Vec<Mat> = (0..nthreads)
                .into_par_iter()
                .map(|th| {
                    let mut local = Mat::zeros(n_u, r);
                    run_thread(ctx, th, u, &saved, &views, &mut |fid, row| {
                        hadd(local.row_mut(fid), row);
                    });
                    local
                })
                .collect();
            // Reduce in thread order for determinism.
            let mut out = locals.remove(0);
            for l in locals {
                out.add_assign(&l);
            }
            out
        }
        ResolvedAccum::Atomic => {
            let mut out = Mat::zeros(n_u, r);
            {
                let shared = SharedRows::new(out.as_mut_slice(), r);
                (0..nthreads).into_par_iter().for_each(|th| {
                    run_thread(ctx, th, u, &saved, &views, &mut |fid, row| {
                        shared.atomic_add_row(fid, row);
                    });
                });
            }
            out
        }
    }
}

/// One logical thread's traversal for mode `u`; `emit(fid, row)` receives
/// each `Ā⁽ᵘ⁾` contribution.
fn run_thread(
    ctx: &KernelCtx<'_>,
    th: usize,
    u: usize,
    saved: &[bool],
    views: &[Option<SharedRows<'_>>],
    emit: &mut dyn FnMut(usize, &[f64]),
) {
    let d = ctx.csf.ndim();
    let r = ctx.rank;
    let mut k_scratch: Vec<Vec<f64>> = (0..u.max(1)).map(|_| vec![0.0; r]).collect();
    let mut t_scratch: Vec<Vec<f64>> = (0..d).map(|_| vec![0.0; r]).collect();
    let mut upd = vec![0.0; r];
    let (rlo, rhi) = ctx.sched.root_range(th);
    for idx0 in rlo..rhi {
        let fid0 = ctx.csf.fids(0)[idx0] as usize;
        k_scratch[0].copy_from_slice(ctx.factors[0].row(fid0));
        walk_u(
            ctx,
            th,
            1,
            idx0,
            u,
            saved,
            views,
            &mut k_scratch,
            &mut t_scratch,
            &mut upd,
            emit,
        );
    }
}

/// Recursive descent for mode `u`: precondition — `k_scratch[level-1]`
/// holds the KRP row of levels `0..level-1` on the current path.
#[allow(clippy::too_many_arguments)]
fn walk_u(
    ctx: &KernelCtx<'_>,
    th: usize,
    level: usize,
    pindex: usize,
    u: usize,
    saved: &[bool],
    views: &[Option<SharedRows<'_>>],
    k_scratch: &mut [Vec<f64>],
    t_scratch: &mut [Vec<f64>],
    upd: &mut [f64],
    emit: &mut dyn FnMut(usize, &[f64]),
) {
    let d = ctx.csf.ndim();
    let (lo, hi) = child_range(ctx.csf, level, pindex);
    let (clo, chi) = ctx.sched.clamp(th, level, lo, hi);
    let fids = ctx.csf.fids(level);
    if level == u {
        if u == d - 1 {
            // Leaf mode: Ā⁽ᵈ⁻¹⁾[fid] += val · k_{d-2}  (KRP scatter).
            let vals = ctx.csf.vals();
            let k_prev = &k_scratch[u - 1];
            for idx in clo..chi {
                for (o, &kv) in upd.iter_mut().zip(k_prev.iter()) {
                    *o = vals[idx] * kv;
                }
                emit(fids[idx] as usize, upd);
            }
        } else {
            for idx in clo..chi {
                if saved[u] {
                    // Fig. 1b: load the memoized partial.
                    // SAFETY: row `idx + th` was written by this thread
                    // during the mode-0 pass under the same schedule, and
                    // no pass writes it concurrently with this read.
                    let t_u = unsafe { views[u].as_ref().unwrap().row(idx + th) };
                    krp_row(upd, &k_scratch[u - 1], t_u);
                } else {
                    // Fig. 1c/1d: recompute t_u from the deepest usable
                    // saved level (or the leaves).
                    compute_t(ctx, th, u, idx, saved, views, t_scratch);
                    krp_row(upd, &k_scratch[u - 1], &t_scratch[u]);
                }
                emit(fids[idx] as usize, upd);
            }
        }
        return;
    }
    // level < u: extend the KRP row and descend.
    for idx in clo..chi {
        {
            let (head, tail) = k_scratch.split_at_mut(level);
            krp_row(
                &mut tail[0],
                &head[level - 1],
                ctx.factors[level].row(fids[idx] as usize),
            );
        }
        walk_u(
            ctx,
            th,
            level + 1,
            idx,
            u,
            saved,
            views,
            k_scratch,
            t_scratch,
            upd,
            emit,
        );
    }
}

/// Fills `t_scratch[level]` with `t_level` for node `idx` (Algorithms
/// 7/8).
fn compute_t(
    ctx: &KernelCtx<'_>,
    th: usize,
    level: usize,
    idx: usize,
    saved: &[bool],
    views: &[Option<SharedRows<'_>>],
    t_scratch: &mut [Vec<f64>],
) {
    let d = ctx.csf.ndim();
    t_scratch[level].fill(0.0);
    let (lo, hi) = child_range(ctx.csf, level + 1, idx);
    let (clo, chi) = ctx.sched.clamp(th, level + 1, lo, hi);
    if level + 1 == d - 1 {
        let fids = ctx.csf.fids(d - 1);
        let vals = ctx.csf.vals();
        let leaf_factor = ctx.factors[d - 1];
        let dst = &mut t_scratch[level];
        for c in clo..chi {
            axpy_row(dst, vals[c], leaf_factor.row(fids[c] as usize));
        }
        return;
    }
    let fids = ctx.csf.fids(level + 1);
    for c in clo..chi {
        let frow = ctx.factors[level + 1].row(fids[c] as usize);
        if saved[level + 1] {
            // SAFETY: same ownership argument as in walk_u.
            let t_child = unsafe { views[level + 1].as_ref().unwrap().row(c + th) };
            let (head, _) = t_scratch.split_at_mut(level + 1);
            hadamard_row(&mut head[level], t_child, frow);
        } else {
            compute_t(ctx, th, level + 1, c, saved, views, t_scratch);
            let (head, tail) = t_scratch.split_at_mut(level + 1);
            hadamard_row(&mut head[level], &tail[0], frow);
        }
    }
}

/// `acc += row`, element-wise.
#[inline]
fn hadd(acc: &mut [f64], row: &[f64]) {
    for (a, &b) in acc.iter_mut().zip(row) {
        *a += b;
    }
}

/// Children of node `(level-1, pindex)` — the root "parent" is virtual.
#[inline]
fn child_range(csf: &Csf, level: usize, pindex: usize) -> (usize, usize) {
    let p = csf.ptr(level - 1);
    (p[pindex], p[pindex + 1])
}
