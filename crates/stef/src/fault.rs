//! Fault injection for the robustness test harness.
//!
//! [`FaultyEngine`] wraps any [`MttkrpEngine`] and injects configurable
//! numerical faults into its outputs — NaN/Inf entries appearing at a
//! chosen call, once or persistently. Combined with
//! [`crate::engine::Stef::corrupt_partials_for_test`] (memoized-partial
//! corruption) and truncated checkpoint files, this lets the test suite
//! prove the CPD driver's contract: **recover or fail with a typed
//! error, never panic, never return silently wrong results.**

use crate::engine::MttkrpEngine;
use crate::runtime::{CancelToken, Executor};
use linalg::Mat;
use std::time::Duration;

/// What to inject, and when.
#[derive(Clone, Debug)]
pub enum Fault {
    /// On the `at`-th MTTKRP call (0-based), overwrite output entry
    /// `(row, col)` with `value`. Fires once.
    MttkrpOutputOnce {
        at: usize,
        row: usize,
        col: usize,
        value: f64,
    },
    /// From the `from`-th MTTKRP call onward, overwrite output entry
    /// `(row, col)` with `value` on every call. Models a persistent
    /// fault (stuck bit, broken kernel) that no retry can outrun.
    MttkrpOutputAlways {
        from: usize,
        row: usize,
        col: usize,
        value: f64,
    },
    /// On the `at`-th MTTKRP call, dispatch a fan-out on the attached
    /// executor (see [`FaultyEngine::with_executor`]) in which logical
    /// thread `thread` panics mid-chunk — the exact scenario that used
    /// to strand the pool's dispatcher on its completion barrier. Fires
    /// once; requires an executor, otherwise it is a no-op.
    WorkerPanicOnce { at: usize, thread: usize },
    /// On the `at`-th MTTKRP call, burn the attached cancel token's
    /// deadline fuse (see [`FaultyEngine::with_cancel`]): arm a deadline
    /// `fuse` from now, so the run cancels itself cooperatively shortly
    /// after. Fires once; requires a token, otherwise it is a no-op.
    DeadlineFuseOnce { at: usize, fuse: Duration },
    /// On the `at`-th MTTKRP call, panic directly in the engine — the
    /// driver's `catch_unwind` turns it into a *retryable*
    /// [`crate::StefError::WorkerPanic`]. Models a spurious transient
    /// failure for the supervisor's retry ladder; unlike
    /// [`Fault::WorkerPanicOnce`] it needs no executor, so it works on
    /// any engine. Fires once per engine instance.
    TransientErrorOnce { at: usize },
}

/// Parses `STEF_BATCH_FAULT`-style directives into per-job faults:
/// comma-separated `<job>:<kind>` items, where `<kind>` is
/// `panic@<call>` ([`Fault::WorkerPanicOnce`] on thread 0),
/// `transient@<call>` ([`Fault::TransientErrorOnce`]), or
/// `fuse@<call>+<ms>` ([`Fault::DeadlineFuseOnce`]). Example:
/// `2:panic@3,5:fuse@1+50`. Unknown or malformed items are errors — a
/// fault harness that silently drops an injection proves nothing.
pub fn parse_fault_directives(s: &str) -> Result<Vec<(usize, Fault)>, String> {
    let mut out = Vec::new();
    for item in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let (job, kind) = item
            .split_once(':')
            .ok_or_else(|| format!("fault '{item}': expected '<job>:<kind>@<call>'"))?;
        let job: usize = job.parse().map_err(|_| format!("fault '{item}': bad job index"))?;
        let (name, rest) = kind
            .split_once('@')
            .ok_or_else(|| format!("fault '{item}': missing '@<call>'"))?;
        let fault = match name {
            "panic" => Fault::WorkerPanicOnce {
                at: rest.parse().map_err(|_| format!("fault '{item}': bad call index"))?,
                thread: 0,
            },
            "transient" => Fault::TransientErrorOnce {
                at: rest.parse().map_err(|_| format!("fault '{item}': bad call index"))?,
            },
            "fuse" => {
                let (at, ms) = rest
                    .split_once('+')
                    .ok_or_else(|| format!("fault '{item}': expected 'fuse@<call>+<ms>'"))?;
                Fault::DeadlineFuseOnce {
                    at: at.parse().map_err(|_| format!("fault '{item}': bad call index"))?,
                    fuse: Duration::from_millis(
                        ms.parse().map_err(|_| format!("fault '{item}': bad fuse ms"))?,
                    ),
                }
            }
            other => return Err(format!("fault '{item}': unknown kind '{other}'")),
        };
        out.push((job, fault));
    }
    Ok(out)
}

/// An engine that misbehaves on demand.
pub struct FaultyEngine<E> {
    inner: E,
    faults: Vec<Fault>,
    calls: usize,
    injected: usize,
    /// When `true`, a successful `degrade_to_unmemoized` also clears
    /// pending one-shot faults — modeling corruption that lived in the
    /// memoized state the fallback just discarded.
    clear_on_degrade: bool,
    /// Executor for [`Fault::WorkerPanicOnce`] dispatches.
    exec: Option<Executor>,
    /// Token for [`Fault::DeadlineFuseOnce`].
    cancel: Option<CancelToken>,
}

impl<E: MttkrpEngine> FaultyEngine<E> {
    /// Wraps `inner` with a list of faults to inject.
    pub fn new(inner: E, faults: Vec<Fault>) -> Self {
        FaultyEngine {
            inner,
            faults,
            calls: 0,
            injected: 0,
            clear_on_degrade: false,
            exec: None,
            cancel: None,
        }
    }

    /// See [`FaultyEngine::clear_on_degrade`] field docs.
    pub fn with_clear_on_degrade(mut self) -> Self {
        self.clear_on_degrade = true;
        self
    }

    /// Attaches the executor [`Fault::WorkerPanicOnce`] dispatches its
    /// panicking fan-out on — typically a clone of the wrapped engine's
    /// own executor, so the panic lands in the very pool the engine's
    /// kernels run on.
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = Some(exec);
        self
    }

    /// Attaches the token [`Fault::DeadlineFuseOnce`] arms — the same
    /// token the CPD driver and the kernels observe.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Total MTTKRP calls observed.
    pub fn calls(&self) -> usize {
        self.calls
    }

    /// Faults actually injected so far.
    pub fn injected(&self) -> usize {
        self.injected
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    fn apply_faults(&mut self, out: &mut Mat, call: usize) {
        for fault in &self.faults {
            let (row, col, value, fire) = match *fault {
                Fault::MttkrpOutputOnce {
                    at,
                    row,
                    col,
                    value,
                } => (row, col, value, call == at),
                Fault::MttkrpOutputAlways {
                    from,
                    row,
                    col,
                    value,
                } => (row, col, value, call >= from),
                Fault::WorkerPanicOnce { .. }
                | Fault::DeadlineFuseOnce { .. }
                | Fault::TransientErrorOnce { .. } => continue,
            };
            if fire && row < out.rows() && col < out.cols() {
                out[(row, col)] = value;
                self.injected += 1;
            }
        }
    }

    /// Fires the runtime-layer faults scheduled for `call`: arms the
    /// deadline fuse, then dispatches the panicking fan-out (which
    /// unwinds out of this frame, exactly like a real worker panic
    /// surfacing through `Executor::fanout`).
    fn fire_runtime_faults(&mut self, call: usize) {
        let mut panic_thread = None;
        let mut transient = false;
        for fault in &self.faults {
            match *fault {
                Fault::WorkerPanicOnce { at, thread } if call == at && self.exec.is_some() => {
                    panic_thread = Some(thread);
                }
                Fault::DeadlineFuseOnce { at, fuse } if call == at => {
                    if let Some(token) = &self.cancel {
                        token.set_deadline(fuse);
                        self.injected += 1;
                    }
                }
                Fault::TransientErrorOnce { at } if call == at => {
                    transient = true;
                }
                _ => {}
            }
        }
        if transient {
            self.injected += 1;
            panic!("injected transient fault (fault harness, call {call})");
        }
        if let Some(thread) = panic_thread {
            self.injected += 1;
            let exec = self.exec.as_ref().expect("checked above");
            let nthreads = exec.workers().max(thread + 1);
            exec.fanout(nthreads, |th| {
                if th == thread {
                    panic!("injected worker panic (fault harness, thread {th})");
                }
            });
        }
    }
}

impl<E: MttkrpEngine> MttkrpEngine for FaultyEngine<E> {
    fn dims(&self) -> &[usize] {
        self.inner.dims()
    }

    fn name(&self) -> String {
        format!("faulty({})", self.inner.name())
    }

    fn sweep_order(&self) -> Vec<usize> {
        self.inner.sweep_order()
    }

    fn norm_sq(&self) -> f64 {
        self.inner.norm_sq()
    }

    fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
        let call = self.calls;
        self.calls += 1;
        self.fire_runtime_faults(call);
        let mut out = self.inner.mttkrp(factors, mode);
        self.apply_faults(&mut out, call);
        out
    }

    fn degrade_to_unmemoized(&mut self) -> bool {
        let degraded = self.inner.degrade_to_unmemoized();
        if degraded && self.clear_on_degrade {
            self.faults
                .retain(|f| !matches!(f, Fault::MttkrpOutputOnce { .. }));
        }
        degraded
    }

    fn degradations(&self) -> Vec<crate::model::DegradationEvent> {
        self.inner.degradations()
    }

    fn last_mode_stats(&self, mode: usize) -> Option<crate::telemetry::ModeStats> {
        self.inner.last_mode_stats(mode)
    }

    fn predicted_mode_traffic(&self, mode: usize) -> Option<(f64, f64)> {
        self.inner.predicted_mode_traffic(mode)
    }

    fn telemetry_alloc_events(&self) -> u64 {
        self.inner.telemetry_alloc_events()
    }

    fn telemetry_runtime_counters(&self) -> Option<crate::runtime::RuntimeCounters> {
        self.inner.telemetry_runtime_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ReferenceEngine;
    use sptensor::CooTensor;

    fn tiny() -> CooTensor {
        let mut t = CooTensor::new(vec![3, 3, 3]);
        t.push(&[0, 1, 2], 1.0);
        t.push(&[1, 2, 0], 2.0);
        t.push(&[2, 0, 1], 3.0);
        t.sort_dedup();
        t
    }

    #[test]
    fn injects_exactly_at_the_chosen_call() {
        let t = tiny();
        let mut eng = FaultyEngine::new(
            ReferenceEngine::new(t.clone()),
            vec![Fault::MttkrpOutputOnce {
                at: 1,
                row: 0,
                col: 0,
                value: f64::NAN,
            }],
        );
        let factors = crate::cpd::init_factors(t.dims(), 2, 1);
        let a = eng.mttkrp(&factors, 0); // call 0: clean
        assert!(a.as_slice().iter().all(|x| x.is_finite()));
        let b = eng.mttkrp(&factors, 1); // call 1: poisoned
        assert!(b[(0, 0)].is_nan());
        let c = eng.mttkrp(&factors, 2); // call 2: clean again
        assert!(c.as_slice().iter().all(|x| x.is_finite()));
        assert_eq!(eng.calls(), 3);
        assert_eq!(eng.injected(), 1);
    }

    #[test]
    fn persistent_fault_fires_on_every_call() {
        let t = tiny();
        let mut eng = FaultyEngine::new(
            ReferenceEngine::new(t.clone()),
            vec![Fault::MttkrpOutputAlways {
                from: 0,
                row: 1,
                col: 0,
                value: f64::INFINITY,
            }],
        );
        let factors = crate::cpd::init_factors(t.dims(), 2, 1);
        for mode in 0..3 {
            let out = eng.mttkrp(&factors, mode);
            assert!(out[(1, 0)].is_infinite());
        }
        assert_eq!(eng.injected(), 3);
    }

    #[test]
    fn degrade_clears_one_shot_faults_when_asked() {
        struct Memoish(ReferenceEngine);
        impl MttkrpEngine for Memoish {
            fn dims(&self) -> &[usize] {
                self.0.dims()
            }
            fn name(&self) -> String {
                "memoish".into()
            }
            fn sweep_order(&self) -> Vec<usize> {
                self.0.sweep_order()
            }
            fn norm_sq(&self) -> f64 {
                self.0.norm_sq()
            }
            fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
                self.0.mttkrp(factors, mode)
            }
            fn degrade_to_unmemoized(&mut self) -> bool {
                true
            }
        }
        let t = tiny();
        let mut eng = FaultyEngine::new(
            Memoish(ReferenceEngine::new(t.clone())),
            vec![Fault::MttkrpOutputOnce {
                at: 5,
                row: 0,
                col: 0,
                value: f64::NAN,
            }],
        )
        .with_clear_on_degrade();
        assert!(eng.degrade_to_unmemoized());
        let factors = crate::cpd::init_factors(t.dims(), 2, 1);
        for call in 0..8 {
            let out = eng.mttkrp(&factors, call % 3);
            assert!(out.as_slice().iter().all(|x| x.is_finite()));
        }
        assert_eq!(eng.injected(), 0);
    }

    #[test]
    fn transient_fault_panics_exactly_once() {
        let t = tiny();
        let mut eng = FaultyEngine::new(
            ReferenceEngine::new(t.clone()),
            vec![Fault::TransientErrorOnce { at: 1 }],
        );
        let factors = crate::cpd::init_factors(t.dims(), 2, 1);
        let _ = eng.mttkrp(&factors, 0); // call 0: clean
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            eng.mttkrp(&factors, 1)
        }));
        assert!(hit.is_err(), "call 1 must panic");
        let _ = eng.mttkrp(&factors, 2); // call 2: clean again
        assert_eq!(eng.injected(), 1);
    }

    #[test]
    fn fault_directives_parse() {
        let faults = parse_fault_directives("2:panic@3, 5:fuse@1+50,0:transient@7").unwrap();
        assert_eq!(faults.len(), 3);
        assert!(matches!(
            faults[0],
            (2, Fault::WorkerPanicOnce { at: 3, thread: 0 })
        ));
        match faults[1] {
            (5, Fault::DeadlineFuseOnce { at: 1, fuse }) => {
                assert_eq!(fuse, Duration::from_millis(50));
            }
            ref other => panic!("bad fuse parse: {other:?}"),
        }
        assert!(matches!(faults[2], (0, Fault::TransientErrorOnce { at: 7 })));
        assert!(parse_fault_directives("").unwrap().is_empty());
        for bad in ["nope", "1:panic", "1:panic@x", "1:fuse@2", "1:magic@2"] {
            assert!(parse_fault_directives(bad).is_err(), "{bad}");
        }
    }
}
