//! STeF2: STeF plus a second CSF rooted at the base CSF's leaf mode
//! (paper §VI-B).
//!
//! The base CSF's leaf-mode MTTKRP is an MTTV-style scatter — the kernel
//! the paper identifies as STeF's weak spot (e.g. on `nell-2`). STeF2
//! spends one extra tensor copy to hold a second CSF whose *root* is that
//! mode, so the leaf-mode MTTKRP becomes a cheap root-mode (TTM + mTTV)
//! traversal with per-slice output ownership. All other modes still go
//! through the memoized base engine.

use crate::engine::{MttkrpEngine, Stef};
use crate::kernels::{mode0_pass, KernelCtx};
use crate::options::StefOptions;
use crate::partials::PartialStore;
use crate::runtime::RuntimeCounters;
use crate::schedule::Schedule;
use crate::telemetry::ModeStats;
use linalg::Mat;
use sptensor::{build_csf, CooTensor, Csf};

/// STeF with a second CSF for the leaf mode.
pub struct Stef2 {
    base: Stef,
    /// Second CSF: root = base leaf mode, remaining levels by length.
    csf2: Csf,
    sched2: Schedule,
    /// Empty store — the second CSF never memoizes.
    partials2: PartialStore,
    /// The original mode served by the second CSF.
    leaf_mode: usize,
    /// Telemetry: measured stats of the most recent leaf-mode pass
    /// (the base engine covers every other mode).
    leaf_stats: Option<ModeStats>,
    /// Telemetry: model-predicted `(reads, writes)` of the leaf mode
    /// as a root pass over the second CSF.
    leaf_predicted: (f64, f64),
}

impl Stef2 {
    /// Prepares the base STeF engine and the auxiliary CSF, panicking on
    /// invalid inputs. See [`Stef2::try_prepare`] for the fallible form.
    pub fn prepare(coo: &CooTensor, opts: StefOptions) -> Self {
        match Self::try_prepare(coo, opts) {
            Ok(engine) => engine,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible preparation: surfaces invalid options and memory-budget
    /// rejections as typed errors instead of panicking.
    pub fn try_prepare(coo: &CooTensor, opts: StefOptions) -> Result<Self, crate::StefError> {
        let base = Stef::try_prepare(coo, opts.clone())?;
        let d = coo.ndim();
        let base_order = base.csf().mode_order().to_vec();
        let leaf_mode = base_order[d - 1];
        // Root the second CSF at the base leaf mode; keep the rest in the
        // base's relative order (already length-sorted).
        let mut order2 = vec![leaf_mode];
        order2.extend(base_order[..d - 1].iter().copied());
        let csf2 = build_csf(coo, &order2);
        let nthreads = base.schedule().nthreads();
        let sched2 = Schedule::build(&csf2, nthreads, opts.load_balance);
        let partials2 = PartialStore::empty(d, nthreads, opts.rank);
        let profile2 = crate::model::LevelProfile::from_csf(&csf2, opts.rank, opts.cache_bytes);
        let leaf_predicted = profile2.traffic_by_level(&vec![false; d])[0];
        Ok(Stef2 {
            base,
            csf2,
            sched2,
            partials2,
            leaf_mode,
            leaf_stats: None,
            leaf_predicted,
        })
    }

    /// The underlying base engine.
    pub fn base(&self) -> &Stef {
        &self.base
    }

    /// Bytes of the *additional* CSF copy STeF2 carries.
    pub fn second_csf_bytes(&self) -> usize {
        self.csf2.memory_bytes()
    }

    /// Model-predicted traffic saved per CPD iteration by routing the
    /// leaf mode through the second CSF (positive = STeF2 should win;
    /// see [`crate::model::stef2_leaf_gain`]).
    pub fn predicted_leaf_gain(&self) -> f64 {
        let opts = self.base.options();
        let base_profile =
            crate::model::LevelProfile::from_csf(self.base.csf(), opts.rank, opts.cache_bytes);
        let second_profile =
            crate::model::LevelProfile::from_csf(&self.csf2, opts.rank, opts.cache_bytes);
        crate::model::stef2_leaf_gain(&base_profile, &second_profile)
    }
}

impl MttkrpEngine for Stef2 {
    fn dims(&self) -> &[usize] {
        self.base.dims()
    }

    fn name(&self) -> String {
        "stef2".into()
    }

    fn sweep_order(&self) -> Vec<usize> {
        self.base.sweep_order()
    }

    fn norm_sq(&self) -> f64 {
        self.base.norm_sq()
    }

    fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
        if mode != self.leaf_mode {
            return self.base.mttkrp(factors, mode);
        }
        // Root-mode pass on the second CSF (no memoization).
        let rank = self.base.options().rank;
        let order2 = self.csf2.mode_order().to_vec();
        let level_factors: Vec<&Mat> = order2.iter().map(|&m| &factors[m]).collect();
        let ctx = KernelCtx::new(&self.csf2, &self.sched2, level_factors, rank);
        let mut out = Mat::zeros(self.csf2.level_dims()[0], rank);
        mode0_pass(&ctx, &mut self.partials2, &mut out);
        if crate::telemetry::COMPILED {
            // Root-style full traversal of the second CSF, no memo.
            let d2 = self.csf2.ndim();
            let (reads, writes) = crate::counters::count_mode0(&self.csf2, &[], rank);
            let fibers: u64 = (0..d2).map(|l| self.csf2.nfibers(l) as u64).sum();
            self.leaf_stats = Some(ModeStats {
                level: d2 - 1, // the mode's level in the *base* order
                nnz: self.csf2.nnz() as u64,
                fibers,
                flops: 2.0 * (reads - 2.0 * fibers as f64).max(0.0),
                reads,
                writes,
            });
        }
        out
    }

    fn degrade_to_unmemoized(&mut self) -> bool {
        // Only the base engine memoizes; the second CSF is stateless.
        self.base.degrade_to_unmemoized()
    }

    fn degradations(&self) -> Vec<crate::model::DegradationEvent> {
        self.base.degradations()
    }

    fn last_mode_stats(&self, mode: usize) -> Option<ModeStats> {
        if mode == self.leaf_mode {
            self.leaf_stats.clone()
        } else {
            self.base.last_mode_stats(mode)
        }
    }

    fn predicted_mode_traffic(&self, mode: usize) -> Option<(f64, f64)> {
        if mode == self.leaf_mode {
            Some(self.leaf_predicted)
        } else {
            self.base.predicted_mode_traffic(mode)
        }
    }

    fn telemetry_alloc_events(&self) -> u64 {
        self.base.telemetry_alloc_events()
    }

    fn telemetry_runtime_counters(&self) -> Option<RuntimeCounters> {
        self.base.telemetry_runtime_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpd::{cpd_als, CpdOptions};
    use linalg::assert_mat_approx_eq;

    fn pseudo_tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = vec![0u32; dims.len()];
        for _ in 0..nnz {
            for (c, &d) in coord.iter_mut().zip(dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            t.push(&coord, ((x >> 40) % 9) as f64 * 0.3 + 0.4);
        }
        t.sort_dedup();
        t
    }

    fn rand_factors(dims: &[usize], r: usize, seed: u64) -> Vec<Mat> {
        let mut x = seed | 1;
        dims.iter()
            .map(|&n| {
                Mat::from_fn(n, r, |_, _| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 35) % 1000) as f64 / 500.0 - 1.0
                })
            })
            .collect()
    }

    #[test]
    fn every_mode_matches_reference() {
        for dims in [vec![15usize, 8, 11], vec![7, 9, 6, 8]] {
            let t = pseudo_tensor(&dims, 500, 1);
            let mut engine = Stef2::prepare(&t, StefOptions::new(4));
            let factors = rand_factors(&dims, 4, 2);
            for mode in engine.sweep_order() {
                let got = engine.mttkrp(&factors, mode);
                assert_mat_approx_eq(&got, &t.mttkrp_reference(&factors, mode), 1e-9);
            }
        }
    }

    #[test]
    fn leaf_mode_goes_through_second_csf() {
        let t = pseudo_tensor(&[15, 8, 11], 400, 3);
        let engine = Stef2::prepare(&t, StefOptions::new(3));
        let base_order = engine.base().csf().mode_order();
        assert_eq!(engine.leaf_mode, base_order[2]);
        assert_eq!(engine.csf2.mode_order()[0], engine.leaf_mode);
        assert!(engine.second_csf_bytes() > 0);
    }

    #[test]
    fn cpd_matches_stef_iterates() {
        let t = pseudo_tensor(&[12, 9, 10], 400, 4);
        let opts = CpdOptions {
            max_iters: 4,
            tol: 0.0,
            seed: 5,
            ..CpdOptions::new(3)
        };
        let mut s1 = Stef::prepare(&t, StefOptions::new(3));
        let mut s2 = Stef2::prepare(&t, StefOptions::new(3));
        let r1 = cpd_als(&mut s1, &opts).expect("stef run");
        let r2 = cpd_als(&mut s2, &opts).expect("stef2 run");
        for (a, b) in r1.fits.iter().zip(&r2.fits) {
            assert!((a - b).abs() < 1e-8, "fits diverged: {a} vs {b}");
        }
    }
}
