//! Multi-job supervision: durable journal, retries, admission control.
//!
//! The CPD driver decomposes *one* tensor; a decomposition service runs
//! *many*, unattended, over the shared worker pool. This module is the
//! supervisory layer that makes that survivable:
//!
//! * **Crash-consistent job journal** — every job transition is an
//!   append-only, FNV-checksummed record ([`JournalRecord`]) fsynced
//!   before the transition takes effect, so a `kill -9` at any byte
//!   leaves a journal from which [`Supervisor::resume`] reconstructs
//!   exactly which jobs are unfinished and restarts them from their
//!   latest checkpoints (the PR 1 bit-exact snapshot machinery), making
//!   the resumed batch converge identically to an uninterrupted one.
//! * **Retry ladder** — [`is_retryable`] classifies [`StefError`]s into
//!   transient (worker panic, I/O hiccough) vs terminal (bad input,
//!   infeasible budget), and transient failures are retried with capped
//!   exponential backoff plus deterministic jitter, the budget consumed
//!   recorded in the journal so a resumed batch does not forget how many
//!   retries a job already burned.
//! * **Admission control & shedding** — each submission is priced
//!   up-front with the paper's §IV-C machinery (memoization plan from
//!   [`crate::model::best_memo_set`], arena bytes from the same formulas
//!   [`crate::model::fit_memory_budget`] degrades against) and admitted
//!   only while the aggregate outstanding price fits the configured
//!   envelope; everything else is shed *at the door* with a typed
//!   [`StefError::Overloaded`] instead of letting the whole batch
//!   thrash. The queue drains nearest-deadline-first.
//!
//! Per-job outcomes additionally stream into the PR 5 JSONL metrics
//! sink (`kind:"batch_job"` records) when a metrics path is configured.

use crate::checkpoint::{
    fnv64, hex_f64, parse_f64, parse_versioned_header, Checkpoint, CheckpointError,
    CheckpointPolicy, CHECKPOINT_ENDIANNESS,
};
use crate::cpd::{cpd_als, CheckpointHook, CpdOptions, CpdResult};
use crate::engine::MttkrpEngine;
use crate::error::StefError;
use crate::model::{best_memo_set, partial_arena_bytes, priv_pool_bytes, LevelProfile};
use crate::runtime::CancelToken;
use crate::sync::{lock_unpoisoned, wait_timeout_unpoisoned};
use crate::workspace::Workspace;
use sptensor::{build_csf, sort_modes_by_length, CooTensor};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Current journal format version (header `stef-journal v1 be`).
pub const JOURNAL_VERSION: u32 = 1;

/// Loads a tensor from a job's `tensor` spec string. The supervisor is
/// agnostic about what the string means — the CLI maps `suite:` specs
/// and `.tns` paths, tests map synthetic generators.
pub type TensorLoader = Arc<dyn Fn(&str) -> Result<CooTensor, StefError> + Send + Sync>;

/// Builds the engine a job attempt runs on. Receives the spec, the
/// loaded tensor, the job's cancel token, and the attempt coordinates —
/// the job id lets a harness key injected faults to specific jobs, the
/// attempt number lets it fault attempt 1 only.
pub type EngineFactory = Arc<
    dyn Fn(
            &JobSpec,
            &CooTensor,
            &CancelToken,
            JobAttempt,
        ) -> Result<Box<dyn MttkrpEngine>, StefError>
        + Send
        + Sync,
>;

/// Which attempt of which job an [`EngineFactory`] call is building for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobAttempt {
    /// Job id (submission order).
    pub job: usize,
    /// 1-based attempt number, monotone across resumes.
    pub attempt: usize,
}

/// One decomposition request.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Tensor spec string, resolved by the [`TensorLoader`].
    pub tensor: String,
    /// Decomposition rank.
    pub rank: usize,
    /// ALS iteration cap.
    pub max_iters: usize,
    /// Convergence tolerance (journaled bit-exactly, so a resumed batch
    /// replays the identical stopping rule).
    pub tol: f64,
    /// Factor-initialization seed.
    pub seed: u64,
    /// Engine name, resolved by the [`EngineFactory`].
    pub engine: String,
    /// Wall-clock deadline, armed when the job's first attempt starts
    /// in a given process; expiry is terminal (a retry cannot outrun a
    /// clock). Elapsed time is not journaled, so a crashed or
    /// interrupted job re-arms the full deadline when it is resumed.
    /// `None` = none.
    pub deadline: Option<Duration>,
    /// Model name the fitted factors publish under (snapshot serving).
    /// `None` falls back to the tensor spec string, so every job has a
    /// servable identity; submitting a second job under the same model
    /// name is a *refit* — its factors atomically replace the model's
    /// snapshot when it converges.
    pub model: Option<String>,
}

impl JobSpec {
    /// A spec with the driver defaults: 50 iterations, tol `1e-5`,
    /// seed 42, the `stef` engine, no deadline, tensor-named model.
    pub fn new(tensor: impl Into<String>, rank: usize) -> Self {
        JobSpec {
            tensor: tensor.into(),
            rank,
            max_iters: 50,
            tol: 1e-5,
            seed: 42,
            engine: "stef".into(),
            deadline: None,
            model: None,
        }
    }

    /// The snapshot name this job's factors publish under.
    pub fn model_name(&self) -> &str {
        self.model.as_deref().unwrap_or(&self.tensor)
    }
}

/// Parses one job-description line — the shared grammar of the
/// `stef batch` jobs file and the `stef serve` submit body:
///
/// ```text
/// <tensor-spec> [rank=R] [iters=N] [tol=T] [seed=S] [engine=NAME]
///               [deadline=SECS] [model=NAME]
/// ```
///
/// `default_rank` fills in when no `rank=` is given. Errors are
/// human-readable descriptions of the offending token.
pub fn parse_job_line(line: &str, default_rank: usize) -> Result<JobSpec, String> {
    let mut toks = line.split_whitespace();
    let tensor = toks.next().ok_or("empty job line")?;
    let mut job = JobSpec::new(tensor, default_rank);
    for tok in toks {
        let (key, value) = tok
            .split_once('=')
            .ok_or_else(|| format!("expected 'key=value', got '{tok}'"))?;
        let bad = |what: &str| format!("bad {what} '{value}'");
        match key {
            "rank" => job.rank = value.parse().map_err(|_| bad("rank"))?,
            "iters" => job.max_iters = value.parse().map_err(|_| bad("iters"))?,
            "tol" => job.tol = value.parse().map_err(|_| bad("tol"))?,
            "seed" => job.seed = value.parse().map_err(|_| bad("seed"))?,
            "engine" => job.engine = value.to_string(),
            "model" => job.model = Some(value.to_string()),
            "deadline" => {
                let secs: f64 = value.parse().map_err(|_| bad("deadline"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(bad("deadline"));
                }
                job.deadline = Some(Duration::from_secs_f64(secs));
            }
            other => {
                return Err(format!(
                    "unknown job field '{other}' (rank iters tol seed engine deadline model)"
                ))
            }
        }
    }
    Ok(job)
}

/// A finished job's outcome, as seen by a [`JobHook`]. `Done` borrows
/// the result *before* it is parked for [`Supervisor::take_result`], so
/// a serving layer can publish factors without a second copy living in
/// the supervisor.
pub enum JobOutcome<'a> {
    /// Converged (or hit the iteration cap) successfully.
    Done(&'a CpdResult),
    /// Terminal failure.
    Failed(&'a StefError),
    /// Cancelled cooperatively; resumable from its checkpoint.
    Interrupted,
}

/// Observer invoked with every job's final per-process outcome —
/// after the outcome is journaled, before the next job is claimed. The
/// serving layer hangs snapshot publication (and staleness marking on
/// failed refits) off this.
#[derive(Clone)]
#[allow(clippy::type_complexity)]
pub struct JobHook(pub Arc<dyn Fn(usize, &JobSpec, JobOutcome<'_>) + Send + Sync>);

impl JobHook {
    /// Wraps a closure.
    pub fn new(f: impl Fn(usize, &JobSpec, JobOutcome<'_>) + Send + Sync + 'static) -> Self {
        JobHook(Arc::new(f))
    }
}

impl std::fmt::Debug for JobHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JobHook(..)")
    }
}

/// A job's predicted resource price (admission-control currency).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobPrice {
    /// Predicted peak engine bytes: CSF + factors + kernel workspace +
    /// memoized partial arenas + privatized-output pool, the same
    /// formulas [`crate::model::fit_memory_budget`] degrades against.
    pub mem_bytes: u64,
    /// Predicted data movement (elements) of one full ALS sweep under
    /// the traffic-optimal memoization plan (§IV-C model).
    pub traffic: f64,
}

/// Prices a job with the §IV-C model: builds the CSF the engine would
/// build (longest-mode-first order), profiles it, picks the
/// traffic-optimal memoization set, and sums the arena formulas. The
/// CSF is dropped before returning — pricing borrows memory only
/// transiently.
pub fn price_job(
    tensor: &CooTensor,
    rank: usize,
    nthreads: usize,
    cache_bytes: usize,
) -> JobPrice {
    let order = sort_modes_by_length(tensor.dims());
    let csf = build_csf(tensor, &order);
    let profile = LevelProfile::from_csf(&csf, rank, cache_bytes);
    let (save, traffic) = best_memo_set(&profile);
    let d = tensor.dims().len();
    let nthreads = nthreads.max(1);
    let partials: usize = (0..d)
        .filter(|&l| save[l])
        .map(|l| partial_arena_bytes(&profile, l, nthreads))
        .sum();
    let pool = priv_pool_bytes(&profile, &vec![true; d], nthreads);
    let factor_bytes: usize = tensor
        .dims()
        .iter()
        .map(|&n| n * rank * std::mem::size_of::<f64>())
        .sum();
    let mem = Workspace::fixed_bytes(d, rank, nthreads)
        + partials
        + pool
        + csf.memory_bytes()
        + factor_bytes;
    JobPrice {
        mem_bytes: mem as u64,
        traffic,
    }
}

/// Whether a failed attempt is worth retrying. Transient causes —
/// a worker panic the pool already healed, an I/O hiccough reading the
/// tensor or writing a checkpoint — may succeed on a clean attempt;
/// everything else (bad input, infeasible budget, numerical divergence,
/// cancellation) is deterministic or intentional and retrying would
/// only burn the budget reproducing it.
pub fn is_retryable(e: &StefError) -> bool {
    matches!(
        e,
        StefError::WorkerPanic { .. }
            | StefError::Checkpoint(CheckpointError::Io(_))
            | StefError::Tns(sptensor::TnsError::Io(_))
    )
}

/// Supervisor configuration.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// The append-only journal file. [`Supervisor::new`] refuses an
    /// existing file (it holds a crashed batch's truth); use
    /// [`Supervisor::resume`] to continue one.
    pub journal_path: PathBuf,
    /// Directory for per-job checkpoints (`job-<id>.ckpt`).
    pub checkpoint_dir: PathBuf,
    /// Checkpoint cadence in iterations (min 1 — the journal's
    /// crash-consistency story needs snapshots to point at).
    pub checkpoint_every: usize,
    /// Jobs run concurrently by [`Supervisor::run_all`].
    pub max_concurrent: usize,
    /// Logical threads each job's engine is priced at (the factory
    /// decides what the engine actually uses; keep them consistent).
    pub threads_per_job: usize,
    /// Cache-size parameter of the pricing model, in bytes.
    pub cache_bytes: usize,
    /// Aggregate predicted-memory envelope in bytes (0 = unlimited).
    pub memory_envelope: u64,
    /// Aggregate predicted-traffic envelope in elements (0 = unlimited).
    pub traffic_envelope: f64,
    /// Transient-failure retries per job.
    pub max_retries: usize,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Batch-level cancel: cancelling it interrupts running jobs
    /// (resumable) and keeps queued ones from starting.
    pub cancel: Option<CancelToken>,
    /// PR 5 JSONL metrics sink for per-job outcome records (appended).
    pub metrics_path: Option<PathBuf>,
    /// Per-job outcome observer (snapshot publication, staleness).
    pub on_outcome: Option<JobHook>,
    /// Cumulative relative error above which the continuous
    /// measured-vs-predicted traffic audit logs a drift warning.
    pub drift_warn_threshold: f64,
}

impl SupervisorConfig {
    /// Defaults: checkpoint every iteration, one job at a time, one
    /// thread, 16 MiB cache model, unlimited envelopes, 2 retries,
    /// 100 ms base / 5 s cap backoff.
    pub fn new(journal_path: impl Into<PathBuf>, checkpoint_dir: impl Into<PathBuf>) -> Self {
        SupervisorConfig {
            journal_path: journal_path.into(),
            checkpoint_dir: checkpoint_dir.into(),
            checkpoint_every: 1,
            max_concurrent: 1,
            threads_per_job: 1,
            cache_bytes: 16 << 20,
            memory_envelope: 0,
            traffic_envelope: 0.0,
            max_retries: 2,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            cancel: None,
            metrics_path: None,
            on_outcome: None,
            drift_warn_threshold: crate::model::DEFAULT_DRIFT_WARN_THRESHOLD,
        }
    }
}

/// A job's externally visible state.
#[derive(Clone, Debug, PartialEq)]
pub enum JobStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// An attempt is executing.
    Running {
        /// 1-based attempt number.
        attempt: usize,
    },
    /// Converged (or hit the iteration cap) successfully.
    Done {
        /// Total attempts used.
        attempts: usize,
        /// Iterations executed (including replayed ones on resume).
        iterations: usize,
        /// Final fit.
        final_fit: f64,
    },
    /// Terminal failure; the error is in [`Supervisor::take_result`].
    Failed {
        /// Total attempts used.
        attempts: usize,
        /// Display form of the terminal error.
        error: String,
    },
    /// Refused at admission ([`StefError::Overloaded`]).
    Shed,
    /// Stopped by batch cancel or [`Supervisor::cancel`]; resumable
    /// from its journaled checkpoint via [`Supervisor::resume`].
    Interrupted,
}

impl JobStatus {
    /// Whether the job can never run again in this batch.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Done { .. } | JobStatus::Failed { .. } | JobStatus::Shed
        )
    }
}

/// One journal line (after the checksum is stripped and verified).
#[derive(Clone, Debug, PartialEq)]
pub enum JournalRecord {
    /// Job admitted; carries everything needed to re-run it.
    Submitted {
        id: usize,
        spec: JobSpec,
        price: JobPrice,
    },
    /// Job refused at admission.
    Shed {
        id: usize,
        resource: String,
        required: f64,
        outstanding: f64,
        envelope: f64,
    },
    /// An attempt began.
    Started { id: usize, attempt: usize },
    /// A checkpoint for `iteration` is durably on disk.
    Checkpointed { id: usize, iteration: usize },
    /// The engine degraded its plan to fit its budget.
    Degraded { id: usize, detail: String },
    /// A transient failure consumed one retry; `attempt` is the attempt
    /// about to run after `backoff_ms`.
    Retrying {
        id: usize,
        attempt: usize,
        backoff_ms: u64,
        error: String,
    },
    /// Cancelled cooperatively — unfinished, resumable.
    Interrupted { id: usize },
    /// Terminal failure.
    Failed {
        id: usize,
        attempts: usize,
        error: String,
    },
    /// Success.
    Done {
        id: usize,
        attempts: usize,
        iterations: usize,
        fit: f64,
    },
}

// ---------------------------------------------------------------------
// Journal encoding
// ---------------------------------------------------------------------

/// Bytes that pass through percent-encoding unescaped. Space, `%`, `!`
/// (the checksum sigil) and anything non-printable must be escaped so a
/// record stays one whitespace-tokenizable line.
fn is_plain(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b':' | b'/' | b',' | b'+' | b'-' | b'=')
}

fn pct_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        if is_plain(b) {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02x}"));
        }
    }
    out
}

fn pct_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3).ok_or("truncated %-escape")?;
            let hex = std::str::from_utf8(hex).map_err(|_| "bad %-escape")?;
            out.push(u8::from_str_radix(hex, 16).map_err(|_| "bad %-escape")?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| "decoded bytes not UTF-8".into())
}

impl JournalRecord {
    /// Renders the record body (no checksum suffix, no newline).
    fn encode(&self) -> String {
        match self {
            JournalRecord::Submitted { id, spec, price } => {
                let deadline = match spec.deadline {
                    Some(d) => d.as_millis().to_string(),
                    None => "-".into(),
                };
                let model = match &spec.model {
                    Some(m) => pct_encode(m),
                    None => "-".into(),
                };
                format!(
                    "submitted {id} tensor={} rank={} iters={} tol={} seed={} engine={} \
                     deadline_ms={deadline} model={model} mem={} traffic={}",
                    pct_encode(&spec.tensor),
                    spec.rank,
                    spec.max_iters,
                    hex_f64(spec.tol),
                    spec.seed,
                    pct_encode(&spec.engine),
                    price.mem_bytes,
                    hex_f64(price.traffic),
                )
            }
            JournalRecord::Shed {
                id,
                resource,
                required,
                outstanding,
                envelope,
            } => format!(
                "shed {id} resource={} required={} outstanding={} envelope={}",
                pct_encode(resource),
                hex_f64(*required),
                hex_f64(*outstanding),
                hex_f64(*envelope),
            ),
            JournalRecord::Started { id, attempt } => format!("started {id} attempt={attempt}"),
            JournalRecord::Checkpointed { id, iteration } => {
                format!("checkpointed {id} iteration={iteration}")
            }
            JournalRecord::Degraded { id, detail } => {
                format!("degraded {id} detail={}", pct_encode(detail))
            }
            JournalRecord::Retrying {
                id,
                attempt,
                backoff_ms,
                error,
            } => format!(
                "retrying {id} attempt={attempt} backoff_ms={backoff_ms} error={}",
                pct_encode(error)
            ),
            JournalRecord::Interrupted { id } => format!("interrupted {id}"),
            JournalRecord::Failed {
                id,
                attempts,
                error,
            } => format!("failed {id} attempts={attempts} error={}", pct_encode(error)),
            JournalRecord::Done {
                id,
                attempts,
                iterations,
                fit,
            } => format!(
                "done {id} attempts={attempts} iterations={iterations} fit={}",
                hex_f64(*fit)
            ),
        }
    }

    /// Parses a verified record body.
    fn decode(body: &str) -> Result<JournalRecord, String> {
        let mut toks = body.split_whitespace();
        let kind = toks.next().ok_or("empty record")?;
        let id: usize = toks
            .next()
            .ok_or("missing job id")?
            .parse()
            .map_err(|_| "bad job id")?;
        let kvs: Vec<(&str, &str)> = toks
            .map(|t| t.split_once('=').ok_or_else(|| format!("bad field '{t}'")))
            .collect::<Result<_, _>>()?;
        let opt = |key: &str| -> Option<&str> {
            kvs.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
        };
        let get = |key: &str| -> Result<&str, String> {
            opt(key).ok_or_else(|| format!("missing field '{key}'"))
        };
        let num = |key: &str| -> Result<usize, String> {
            get(key)?.parse().map_err(|_| format!("bad '{key}'"))
        };
        let f = |key: &str| -> Result<f64, String> {
            parse_f64(get(key)?, key).map_err(|e| e.to_string())
        };
        Ok(match kind {
            "submitted" => JournalRecord::Submitted {
                id,
                spec: JobSpec {
                    tensor: pct_decode(get("tensor")?)?,
                    rank: num("rank")?,
                    max_iters: num("iters")?,
                    tol: f("tol")?,
                    seed: get("seed")?.parse().map_err(|_| "bad 'seed'")?,
                    engine: pct_decode(get("engine")?)?,
                    deadline: match get("deadline_ms")? {
                        "-" => None,
                        ms => Some(Duration::from_millis(
                            ms.parse().map_err(|_| "bad 'deadline_ms'")?,
                        )),
                    },
                    // Absent in pre-service v1 journals: decode is
                    // field-tolerant, so both directions stay readable.
                    model: match opt("model") {
                        None | Some("-") => None,
                        Some(m) => Some(pct_decode(m)?),
                    },
                },
                price: JobPrice {
                    mem_bytes: get("mem")?.parse().map_err(|_| "bad 'mem'")?,
                    traffic: f("traffic")?,
                },
            },
            "shed" => JournalRecord::Shed {
                id,
                resource: pct_decode(get("resource")?)?,
                required: f("required")?,
                outstanding: f("outstanding")?,
                envelope: f("envelope")?,
            },
            "started" => JournalRecord::Started {
                id,
                attempt: num("attempt")?,
            },
            "checkpointed" => JournalRecord::Checkpointed {
                id,
                iteration: num("iteration")?,
            },
            "degraded" => JournalRecord::Degraded {
                id,
                detail: pct_decode(get("detail")?)?,
            },
            "retrying" => JournalRecord::Retrying {
                id,
                attempt: num("attempt")?,
                backoff_ms: get("backoff_ms")?.parse().map_err(|_| "bad 'backoff_ms'")?,
                error: pct_decode(get("error")?)?,
            },
            "interrupted" => JournalRecord::Interrupted { id },
            "failed" => JournalRecord::Failed {
                id,
                attempts: num("attempts")?,
                error: pct_decode(get("error")?)?,
            },
            "done" => JournalRecord::Done {
                id,
                attempts: num("attempts")?,
                iterations: num("iterations")?,
                fit: f("fit")?,
            },
            other => return Err(format!("unknown record kind '{other}'")),
        })
    }

    /// The job this record belongs to.
    pub fn job_id(&self) -> usize {
        match self {
            JournalRecord::Submitted { id, .. }
            | JournalRecord::Shed { id, .. }
            | JournalRecord::Started { id, .. }
            | JournalRecord::Checkpointed { id, .. }
            | JournalRecord::Degraded { id, .. }
            | JournalRecord::Retrying { id, .. }
            | JournalRecord::Interrupted { id }
            | JournalRecord::Failed { id, .. }
            | JournalRecord::Done { id, .. } => *id,
        }
    }

    /// Whether this record by itself marks its job terminal. Compaction
    /// keeps these plus the `Submitted` record for finished jobs
    /// (dropping a terminal job's records entirely would make
    /// [`Supervisor::replay`] resurrect it as a queued placeholder;
    /// dropping just its `Submitted` record would leave it a terminal
    /// placeholder with an empty spec, so a post-restart
    /// `GET /jobs/<id>` would lose its model/tensor context).
    pub fn is_terminal_marker(&self) -> bool {
        matches!(
            self,
            JournalRecord::Done { .. } | JournalRecord::Failed { .. } | JournalRecord::Shed { .. }
        )
    }
}

/// The result of reading a journal back.
#[derive(Debug)]
pub struct JournalScan {
    /// Verified records in append order.
    pub records: Vec<JournalRecord>,
    /// Whether a torn final line (crash mid-append) was dropped. Only
    /// the *last* line may be bad — a bad line with valid lines after
    /// it is corruption, not a crash, and errors instead.
    pub torn_tail: bool,
    /// Byte length of the verified prefix: the header plus every valid
    /// record line, trailing newlines included. When `torn_tail` is
    /// set, the bytes past this offset are the torn partial line;
    /// [`Supervisor::resume`] truncates to here before appending so a
    /// new record cannot fuse with the torn bytes into one line that
    /// later scans reject as mid-file corruption.
    pub valid_len: u64,
}

/// Reads and verifies a journal file. Future-version or wrong-endian
/// headers fail with [`StefError::CheckpointVersion`]; checksum or
/// grammar damage anywhere but the final line fails with a corrupt
/// [`StefError::Checkpoint`].
pub fn scan_journal(path: &Path) -> Result<JournalScan, StefError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| StefError::Checkpoint(CheckpointError::Io(e)))?;
    let mut segments = text.split_inclusive('\n');
    let header = segments.next().ok_or(StefError::Checkpoint(CheckpointError::Corrupt {
        reason: "journal is empty".into(),
    }))?;
    if !header.ends_with('\n') {
        // `create` writes header + newline in one syscall and fsyncs
        // before any record exists; a journal that ends inside the
        // header never finished being created and holds nothing.
        return Err(StefError::Checkpoint(CheckpointError::Corrupt {
            reason: "journal header is not newline-terminated".into(),
        }));
    }
    parse_versioned_header(header.trim_end(), "stef-journal", JOURNAL_VERSION)
        .map_err(StefError::from)?;

    let body_segments: Vec<&str> = segments.collect();
    let mut records = Vec::with_capacity(body_segments.len());
    let mut torn_tail = false;
    let mut valid_len = header.len() as u64;
    for (i, seg) in body_segments.iter().enumerate() {
        let last = i + 1 == body_segments.len();
        match verify_line(seg.trim_end_matches('\n')) {
            // The newline is part of the record's single append write:
            // a line whose content verifies but whose newline never
            // landed is torn all the same (appending after it would
            // fuse two records into one line).
            Ok(record) if seg.ends_with('\n') => {
                records.push(record);
                valid_len += seg.len() as u64;
            }
            Ok(_) => torn_tail = true,
            Err(reason) if last => {
                // A crash mid-append can only tear the final line.
                let _ = reason;
                torn_tail = true;
            }
            Err(reason) => {
                return Err(StefError::Checkpoint(CheckpointError::Corrupt {
                    reason: format!("journal line {}: {reason}", i + 2),
                }))
            }
        }
    }
    Ok(JournalScan {
        records,
        torn_tail,
        valid_len,
    })
}

/// Checks one journal line's ` !<fnv64>` suffix and parses the body.
fn verify_line(line: &str) -> Result<JournalRecord, String> {
    let (body, sum) = line.rsplit_once(" !").ok_or("missing checksum suffix")?;
    let want = u64::from_str_radix(sum.trim(), 16).map_err(|_| "bad checksum value")?;
    let got = fnv64(body.as_bytes());
    if got != want {
        return Err(format!("checksum mismatch (stored {want:016x}, computed {got:016x})"));
    }
    JournalRecord::decode(body)
}

/// Append-only journal writer; every record is flushed and fsynced
/// before the caller proceeds, so the journal never claims less than
/// what happened.
struct JournalWriter {
    file: std::fs::File,
}

impl JournalWriter {
    fn create(path: &Path) -> Result<JournalWriter, StefError> {
        let mut file = std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| StefError::Checkpoint(CheckpointError::Io(e)))?;
        file.write_all(
            format!("stef-journal v{JOURNAL_VERSION} {CHECKPOINT_ENDIANNESS}\n").as_bytes(),
        )
        .and_then(|_| file.sync_data())
        .map_err(|e| StefError::Checkpoint(CheckpointError::Io(e)))?;
        Ok(JournalWriter { file })
    }

    fn open_append(path: &Path) -> Result<JournalWriter, StefError> {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| StefError::Checkpoint(CheckpointError::Io(e)))?;
        Ok(JournalWriter { file })
    }

    fn append(&mut self, record: &JournalRecord) -> Result<(), StefError> {
        let body = record.encode();
        let line = format!("{body} !{:016x}\n", fnv64(body.as_bytes()));
        self.file
            .write_all(line.as_bytes())
            .and_then(|_| self.file.sync_data())
            .map_err(|e| StefError::Checkpoint(CheckpointError::Io(e)))
    }
}

/// Compacts a journal: rewrites it keeping every record of unfinished
/// jobs but only the `submitted` + terminal marker
/// (`done`/`failed`/`shed`) pair of finished ones, so a long-lived
/// daemon's journal stays proportional to its job *count* instead of
/// their attempt/checkpoint history. The terminal markers must
/// survive — [`Supervisor::resume`]'s replay treats a job id it has
/// never seen as an unfinished placeholder, so dropping a done job
/// entirely would resurrect it with an empty spec — and the `submitted`
/// records must survive with them so a restarted daemon still knows a
/// finished job's spec (model name, tensor, rank) when asked for its
/// status. (A shed job has no `submitted` record; its `shed` marker
/// alone replays to the right state.)
///
/// Durability: the compacted journal is written to a sibling temp file,
/// fsynced, atomically renamed over the original, and the directory
/// fsynced — a crash at any point leaves either the old complete
/// journal or the new complete one, never a mix. A torn tail is dropped
/// by the rewrite (same semantics as [`Supervisor::resume`]'s
/// truncation). Callers must serialize against concurrent appenders;
/// [`Supervisor::compact_journal`] does so under the journal lock.
///
/// Returns the number of records dropped.
pub fn compact_journal_file(path: &Path) -> Result<usize, StefError> {
    let io = |e: std::io::Error| StefError::Checkpoint(CheckpointError::Io(e));
    let scan = scan_journal(path)?;
    let terminal: std::collections::HashSet<usize> = scan
        .records
        .iter()
        .filter(|r| r.is_terminal_marker())
        .map(|r| r.job_id())
        .collect();
    let keep: Vec<&JournalRecord> = scan
        .records
        .iter()
        .filter(|r| {
            r.is_terminal_marker()
                || matches!(r, JournalRecord::Submitted { .. })
                || !terminal.contains(&r.job_id())
        })
        .collect();
    let dropped = scan.records.len() - keep.len();
    if dropped == 0 && !scan.torn_tail {
        return Ok(0);
    }
    let mut text = format!("stef-journal v{JOURNAL_VERSION} {CHECKPOINT_ENDIANNESS}\n");
    for record in &keep {
        let body = record.encode();
        text.push_str(&format!("{body} !{:016x}\n", fnv64(body.as_bytes())));
    }
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("journal");
    let tmp = path.with_file_name(format!("{file_name}.compact.tmp"));
    {
        let mut file = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(io)?;
        file.write_all(text.as_bytes())
            .and_then(|_| file.sync_data())
            .map_err(io)?;
    }
    std::fs::rename(&tmp, path).map_err(io)?;
    // fsync the directory so the rename itself is durable.
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    std::fs::File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(io)?;
    Ok(dropped)
}

// ---------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------

struct Job {
    spec: JobSpec,
    price: JobPrice,
    status: JobStatus,
    token: CancelToken,
    /// Loaded eagerly at submit (pricing needs it anyway); resumed jobs
    /// reload lazily at run time.
    tensor: Option<CooTensor>,
    retries_used: usize,
    result: Option<Result<CpdResult, StefError>>,
}

struct Inner {
    jobs: Vec<Job>,
    /// Admitted, not-yet-claimed job ids.
    queue: Vec<usize>,
    outstanding_mem: u64,
    outstanding_traffic: f64,
}

/// Summary of a drained batch.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchReport {
    /// `(job id, final status)` for every submitted or shed job.
    pub outcomes: Vec<(usize, JobStatus)>,
}

impl BatchReport {
    fn count(&self, f: impl Fn(&JobStatus) -> bool) -> usize {
        self.outcomes.iter().filter(|(_, s)| f(s)).count()
    }

    /// Jobs that finished successfully.
    pub fn done(&self) -> usize {
        self.count(|s| matches!(s, JobStatus::Done { .. }))
    }

    /// Jobs that failed terminally.
    pub fn failed(&self) -> usize {
        self.count(|s| matches!(s, JobStatus::Failed { .. }))
    }

    /// Jobs shed at admission.
    pub fn shed(&self) -> usize {
        self.count(|s| matches!(s, JobStatus::Shed))
    }

    /// Jobs interrupted (resumable).
    pub fn interrupted(&self) -> usize {
        self.count(|s| matches!(s, JobStatus::Interrupted))
    }

    /// The batch-level error a CLI should exit with, worst-first:
    /// unfinished work (interrupted, or a job somehow still queued or
    /// running — the batch is incomplete either way) beats shedding
    /// beats terminal job failures; a fully successful batch returns
    /// `None`.
    pub fn exit_error(&self) -> Option<StefError> {
        if self.count(|s| !s.is_terminal()) > 0 {
            return Some(StefError::Cancelled {
                iteration: 0,
                deadline: false,
                checkpoint_iteration: None,
            });
        }
        if let Some((_, JobStatus::Shed)) = self
            .outcomes
            .iter()
            .find(|(_, s)| matches!(s, JobStatus::Shed))
        {
            return Some(StefError::Overloaded {
                resource: "batch",
                required: self.shed() as f64,
                outstanding: 0.0,
                envelope: 0.0,
            });
        }
        if self.failed() > 0 {
            return Some(StefError::BatchFailed {
                failed: self.failed(),
                total: self.outcomes.len(),
            });
        }
        None
    }
}

/// The multi-job runtime. All methods take `&self`; the supervisor is
/// shared freely across threads.
pub struct Supervisor {
    cfg: SupervisorConfig,
    loader: TensorLoader,
    factory: EngineFactory,
    inner: Mutex<Inner>,
    /// `Arc` so checkpoint hooks (which must be `'static` for
    /// `CpdOptions`) can journal without borrowing the supervisor.
    journal: Arc<Mutex<JournalWriter>>,
    metrics: Option<Mutex<std::fs::File>>,
    /// Signalled on every admit; [`Supervisor::run_service`] workers
    /// park on it instead of polling an empty queue.
    work: Condvar,
    /// Set while `run_all` drains (and by [`Supervisor::begin_drain`]).
    /// Workers exit once the queue is momentarily empty, so a job
    /// submitted mid-drain could be left queued but never claimed;
    /// `submit` refuses while this is set instead of silently stranding
    /// the job.
    draining: AtomicBool,
}

impl Supervisor {
    /// Starts a fresh batch. Fails if `journal_path` already exists —
    /// an existing journal is a crashed batch's record of truth, and
    /// silently truncating it would destroy the resume story; pass it
    /// to [`Supervisor::resume`] or delete it explicitly.
    pub fn new(
        cfg: SupervisorConfig,
        loader: TensorLoader,
        factory: EngineFactory,
    ) -> Result<Supervisor, StefError> {
        if cfg.journal_path.exists() {
            return Err(StefError::Input(format!(
                "journal '{}' already exists; resume it or remove it first",
                cfg.journal_path.display()
            )));
        }
        std::fs::create_dir_all(&cfg.checkpoint_dir)
            .map_err(|e| StefError::Checkpoint(CheckpointError::Io(e)))?;
        if let Some(parent) = cfg.journal_path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| StefError::Checkpoint(CheckpointError::Io(e)))?;
            }
        }
        let journal = JournalWriter::create(&cfg.journal_path)?;
        Self::build(cfg, loader, factory, journal, Vec::new())
    }

    /// Reopens a crashed or interrupted batch: reads the journal,
    /// treats every job without a terminal record (`done`, `failed`,
    /// `shed`) as unfinished, and re-queues it to restart from its
    /// latest on-disk checkpoint. Retry budgets already consumed stay
    /// consumed. The journal is appended to, not rewritten.
    pub fn resume(
        cfg: SupervisorConfig,
        loader: TensorLoader,
        factory: EngineFactory,
    ) -> Result<Supervisor, StefError> {
        let scan = scan_journal(&cfg.journal_path)?;
        if scan.torn_tail {
            // Cut the torn partial line (no trailing newline) off
            // before reopening for append: the first new record would
            // otherwise fuse with the torn bytes into one unverifiable
            // line, which later scans reject as mid-file corruption.
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&cfg.journal_path)
                .map_err(|e| StefError::Checkpoint(CheckpointError::Io(e)))?;
            file.set_len(scan.valid_len)
                .and_then(|()| file.sync_data())
                .map_err(|e| StefError::Checkpoint(CheckpointError::Io(e)))?;
        }
        std::fs::create_dir_all(&cfg.checkpoint_dir)
            .map_err(|e| StefError::Checkpoint(CheckpointError::Io(e)))?;
        // Resume is the natural compaction point: the full history was
        // just replayed into memory, so terminal jobs' intermediate
        // records have served their purpose and a long-lived daemon's
        // journal must not grow without bound across restarts.
        compact_journal_file(&cfg.journal_path)?;
        let journal = JournalWriter::open_append(&cfg.journal_path)?;
        Self::build(cfg, loader, factory, journal, scan.records)
    }

    fn build(
        cfg: SupervisorConfig,
        loader: TensorLoader,
        factory: EngineFactory,
        journal: JournalWriter,
        history: Vec<JournalRecord>,
    ) -> Result<Supervisor, StefError> {
        let metrics = match &cfg.metrics_path {
            Some(path) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| StefError::Checkpoint(CheckpointError::Io(e)))?,
            )),
            None => None,
        };
        let mut inner = Inner {
            jobs: Vec::new(),
            queue: Vec::new(),
            outstanding_mem: 0,
            outstanding_traffic: 0.0,
        };
        for record in history {
            replay(&mut inner, record);
        }
        // Everything non-terminal is unfinished: re-queue it and
        // re-commit its price against the envelope.
        for (id, job) in inner.jobs.iter_mut().enumerate() {
            if !job.status.is_terminal() {
                job.status = JobStatus::Queued;
                job.token = CancelToken::new();
                inner.queue.push(id);
                inner.outstanding_mem += job.price.mem_bytes;
                inner.outstanding_traffic += job.price.traffic;
            }
        }
        Ok(Supervisor {
            cfg,
            loader,
            factory,
            inner: Mutex::new(inner),
            journal: Arc::new(Mutex::new(journal)),
            metrics,
            work: Condvar::new(),
            draining: AtomicBool::new(false),
        })
    }

    /// Prices `spec`, checks it against the envelope, and either queues
    /// it (returning its job id) or sheds it with
    /// [`StefError::Overloaded`]. Both outcomes are journaled before
    /// this returns.
    pub fn submit(&self, spec: JobSpec) -> Result<usize, StefError> {
        if self.draining.load(Ordering::Acquire) {
            return Err(StefError::Input(
                "cannot submit while the supervisor is draining".into(),
            ));
        }
        let tensor = (self.loader)(&spec.tensor)?;
        let price = price_job(
            &tensor,
            spec.rank,
            self.cfg.threads_per_job,
            self.cfg.cache_bytes,
        );
        let mut inner = lock_unpoisoned(&self.inner);
        let id = inner.jobs.len();
        let over = |required: f64, outstanding: f64, envelope: f64| {
            envelope > 0.0 && outstanding + required > envelope
        };
        let shed_as = if over(
            price.mem_bytes as f64,
            inner.outstanding_mem as f64,
            self.cfg.memory_envelope as f64,
        ) {
            Some((
                "memory",
                price.mem_bytes as f64,
                inner.outstanding_mem as f64,
                self.cfg.memory_envelope as f64,
            ))
        } else if over(
            price.traffic,
            inner.outstanding_traffic,
            self.cfg.traffic_envelope,
        ) {
            Some((
                "traffic",
                price.traffic,
                inner.outstanding_traffic,
                self.cfg.traffic_envelope,
            ))
        } else {
            None
        };
        if let Some((resource, required, outstanding, envelope)) = shed_as {
            crate::metrics::counter(
                "stef_jobs_shed_total",
                "Jobs refused at admission, by exhausted envelope resource",
                &[("resource", resource)],
            )
            .inc();
            crate::flight::record(crate::flight::FlightEvent::JobShed, id as u64, 0);
            self.journal_append(&JournalRecord::Shed {
                id,
                resource: resource.into(),
                required,
                outstanding,
                envelope,
            })?;
            inner.jobs.push(Job {
                spec,
                price,
                status: JobStatus::Shed,
                token: CancelToken::new(),
                tensor: None,
                retries_used: 0,
                result: None,
            });
            return Err(StefError::Overloaded {
                resource,
                required,
                outstanding,
                envelope,
            });
        }
        crate::metrics::counter(
            "stef_jobs_submitted_total",
            "Jobs admitted past envelope pricing",
            &[],
        )
        .inc();
        self.journal_append(&JournalRecord::Submitted {
            id,
            spec: spec.clone(),
            price,
        })?;
        inner.outstanding_mem += price.mem_bytes;
        inner.outstanding_traffic += price.traffic;
        inner.jobs.push(Job {
            spec,
            price,
            status: JobStatus::Queued,
            token: CancelToken::new(),
            tensor: Some(tensor),
            retries_used: 0,
            result: None,
        });
        inner.queue.push(id);
        drop(inner);
        self.work.notify_one();
        Ok(id)
    }

    /// The job's current status, or `None` for an unknown id.
    pub fn status(&self, id: usize) -> Option<JobStatus> {
        lock_unpoisoned(&self.inner)
            .jobs
            .get(id)
            .map(|j| j.status.clone())
    }

    /// Cancels one job: a queued job is marked interrupted without ever
    /// starting; a running job's token is cancelled and the driver
    /// checkpoints on its way out. Returns `false` for unknown or
    /// already-terminal jobs.
    pub fn cancel(&self, id: usize) -> bool {
        let mut inner = lock_unpoisoned(&self.inner);
        let status = match inner.jobs.get(id) {
            Some(job) => job.status.clone(),
            None => return false,
        };
        match status {
            JobStatus::Queued => {
                if let Some(job) = inner.jobs.get_mut(id) {
                    job.status = JobStatus::Interrupted;
                }
                inner.queue.retain(|&q| q != id);
                Self::release_price(&mut inner, id);
                drop(inner);
                let _ = self.journal_append(&JournalRecord::Interrupted { id });
                true
            }
            JobStatus::Running { .. } => {
                if let Some(job) = inner.jobs.get(id) {
                    job.token.cancel();
                }
                true
            }
            _ => false,
        }
    }

    /// Moves the job's final result out, once it is terminal.
    pub fn take_result(&self, id: usize) -> Option<Result<CpdResult, StefError>> {
        lock_unpoisoned(&self.inner)
            .jobs
            .get_mut(id)
            .and_then(|j| j.result.take())
    }

    /// Drains the queue: runs every admitted job to a journaled outcome
    /// on up to `max_concurrent` worker threads, honoring the batch
    /// cancel token, and reports the final per-job statuses.
    pub fn run_all(&self) -> BatchReport {
        self.draining.store(true, Ordering::Release);
        loop {
            let workers = self.cfg.max_concurrent.max(1);
            let drained = AtomicBool::new(false);
            std::thread::scope(|s| {
                let handles: Vec<_> =
                    (0..workers).map(|_| s.spawn(|| self.worker_loop())).collect();
                // Batch-cancel propagation: cancelling the batch token must
                // reach jobs already running on their own tokens.
                let propagator = self.cfg.cancel.clone().map(|batch| {
                    let drained = &drained;
                    s.spawn(move || {
                        while !drained.load(Ordering::Acquire) {
                            if batch.is_cancelled() {
                                for job in lock_unpoisoned(&self.inner).jobs.iter() {
                                    if matches!(job.status, JobStatus::Running { .. }) {
                                        job.token.cancel();
                                    }
                                }
                            }
                            std::thread::sleep(Duration::from_millis(20));
                        }
                    })
                });
                for h in handles {
                    let _ = h.join();
                }
                drained.store(true, Ordering::Release);
                if let Some(p) = propagator {
                    let _ = p.join();
                }
            });
            // A submit that passed the draining check just before it was
            // set can land in the queue after the workers exited; sweep
            // again so nothing is left silently queued.
            if self.batch_cancelled() || lock_unpoisoned(&self.inner).queue.is_empty() {
                break;
            }
        }
        self.draining.store(false, Ordering::Release);
        self.report()
    }

    /// Runs jobs *as they arrive* until `stop` fires — the service-mode
    /// counterpart to [`Supervisor::run_all`]. Unlike `run_all` it does
    /// not set `draining`, so submissions keep landing while workers
    /// run; idle workers park on a condvar that [`Supervisor::submit`]
    /// signals. On stop, workers finish their in-flight jobs (a caller
    /// wanting a faster drain cancels them via
    /// [`Supervisor::cancel_running`] first), then still-queued jobs
    /// are journaled `Interrupted` so a restart resumes them.
    pub fn run_service(&self, stop: &CancelToken) -> BatchReport {
        let workers = self.cfg.max_concurrent.max(1);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| self.service_worker(stop));
            }
        });
        self.interrupt_queued();
        self.report()
    }

    fn service_worker(&self, stop: &CancelToken) {
        loop {
            let claimed = {
                let mut inner = lock_unpoisoned(&self.inner);
                loop {
                    if stop.is_cancelled() || self.batch_cancelled() {
                        break None;
                    }
                    if let Some(id) = claim_next(&mut inner) {
                        break Some(id);
                    }
                    // Timed wait: a stop signal does not notify the
                    // condvar, so parked workers re-check it on a
                    // 50 ms heartbeat.
                    inner =
                        wait_timeout_unpoisoned(&self.work, inner, Duration::from_millis(50));
                }
            };
            match claimed {
                Some(id) => self.run_job(id),
                None => return,
            }
        }
    }

    /// Stops admission: every subsequent [`Supervisor::submit`] refuses
    /// until the flag is cleared. The serving layer sets this on the
    /// first SIGTERM/SIGINT, before giving in-flight jobs their grace
    /// period.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
        self.work.notify_all();
    }

    /// Whether admission is currently refused.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Cancels every running job's token (cooperative: each checkpoints
    /// on its way out and lands `Interrupted`, resumable after restart).
    /// A job a worker has claimed off the queue but not yet marked
    /// `Running` (status still `Queued`, id no longer queued) is
    /// cancelled too — otherwise a drain racing a claim lets that job
    /// start with an uncancelled token and run to completion after the
    /// grace already expired. Returns how many jobs were signalled.
    pub fn cancel_running(&self) -> usize {
        let inner = lock_unpoisoned(&self.inner);
        let mut n = 0;
        for (id, job) in inner.jobs.iter().enumerate() {
            let claimed_not_started =
                matches!(job.status, JobStatus::Queued) && !inner.queue.contains(&id);
            if matches!(job.status, JobStatus::Running { .. }) || claimed_not_started {
                job.token.cancel();
                n += 1;
            }
        }
        n
    }

    /// `(queued, running)` job counts — the health-endpoint payload.
    pub fn load_counts(&self) -> (usize, usize) {
        let inner = lock_unpoisoned(&self.inner);
        let running = inner
            .jobs
            .iter()
            .filter(|j| matches!(j.status, JobStatus::Running { .. }))
            .count();
        (inner.queue.len(), running)
    }

    /// A clone of the job's spec, or `None` for an unknown id.
    pub fn job_spec(&self, id: usize) -> Option<JobSpec> {
        lock_unpoisoned(&self.inner)
            .jobs
            .get(id)
            .map(|j| j.spec.clone())
    }

    /// The configuration the supervisor was built with.
    pub fn config(&self) -> &SupervisorConfig {
        &self.cfg
    }

    /// Compacts the live journal in place (see [`compact_journal_file`])
    /// and swaps the writer onto the rewritten file, all under the
    /// journal lock so no concurrent append can land on the unlinked
    /// inode. Returns the number of records dropped.
    pub fn compact_journal(&self) -> Result<usize, StefError> {
        let mut writer = lock_unpoisoned(&self.journal);
        let dropped = compact_journal_file(&self.cfg.journal_path)?;
        *writer = JournalWriter::open_append(&self.cfg.journal_path)?;
        Ok(dropped)
    }

    /// Final statuses for every job seen so far.
    pub fn report(&self) -> BatchReport {
        let inner = lock_unpoisoned(&self.inner);
        BatchReport {
            outcomes: inner
                .jobs
                .iter()
                .enumerate()
                .map(|(id, j)| (id, j.status.clone()))
                .collect(),
        }
    }

    fn batch_cancelled(&self) -> bool {
        self.cfg.cancel.as_ref().is_some_and(|t| t.is_cancelled())
    }

    fn journal_append(&self, record: &JournalRecord) -> Result<(), StefError> {
        lock_unpoisoned(&self.journal).append(record)
    }

    fn worker_loop(&self) {
        loop {
            if self.batch_cancelled() {
                self.interrupt_queued();
                return;
            }
            let claimed = {
                let mut inner = lock_unpoisoned(&self.inner);
                claim_next(&mut inner)
            };
            match claimed {
                Some(id) => self.run_job(id),
                None => return,
            }
        }
    }

    /// Marks every still-queued job interrupted (batch cancel observed
    /// before it started). Idempotent across racing workers: the queue
    /// is drained under the lock.
    fn interrupt_queued(&self) {
        let ids: Vec<usize> = {
            let mut inner = lock_unpoisoned(&self.inner);
            let ids = std::mem::take(&mut inner.queue);
            for &id in &ids {
                let Some(job) = inner.jobs.get_mut(id) else { continue };
                let price = job.price;
                job.status = JobStatus::Interrupted;
                inner.outstanding_mem = inner.outstanding_mem.saturating_sub(price.mem_bytes);
                inner.outstanding_traffic -= price.traffic;
            }
            ids
        };
        for id in ids {
            let _ = self.journal_append(&JournalRecord::Interrupted { id });
        }
    }

    fn checkpoint_path(&self, id: usize) -> PathBuf {
        self.cfg.checkpoint_dir.join(format!("job-{id}.ckpt"))
    }

    fn run_job(&self, id: usize) {
        let start = Instant::now();
        let (spec, token, mut tensor, retries_already_used) = {
            let mut inner = lock_unpoisoned(&self.inner);
            let Some(job) = inner.jobs.get_mut(id) else { return };
            (
                job.spec.clone(),
                job.token.clone(),
                job.tensor.take(),
                job.retries_used,
            )
        };
        if let Some(deadline) = spec.deadline {
            if !token.deadline_armed() {
                token.set_deadline(deadline);
            }
        }
        let ckpt_path = self.checkpoint_path(id);
        let mut attempt = retries_already_used + 1;
        let attempt_hist = |outcome: &'static str| {
            crate::metrics::histogram(
                "stef_job_attempt_seconds",
                "Wall time of one job attempt, by how the attempt ended",
                &[("outcome", outcome)],
                crate::metrics::JOB_BUCKETS,
            )
        };
        loop {
            let attempt_t0 = Instant::now();
            crate::flight::record(crate::flight::FlightEvent::JobStart, id as u64, attempt as u64);
            {
                let mut inner = lock_unpoisoned(&self.inner);
                if let Some(job) = inner.jobs.get_mut(id) {
                    job.status = JobStatus::Running { attempt };
                }
            }
            if self.journal_append(&JournalRecord::Started { id, attempt }).is_err() {
                // A dead journal means no outcome can be made durable;
                // stop rather than run unjournaled work.
                self.finish_interrupted(id, start);
                return;
            }
            let outcome: Result<CpdResult, StefError> = (|| {
                if tensor.is_none() {
                    // Resumed job: the tensor was never loaded in this
                    // process. A loader failure is an attempt failure
                    // like any other — it flows into the retry
                    // classification below, so a transient I/O error
                    // reading the tensor burns a retry instead of
                    // terminally failing the job.
                    tensor = Some((self.loader)(&spec.tensor)?);
                }
                let tensor = tensor.as_ref().ok_or_else(|| {
                    StefError::Input("tensor unavailable after load".into())
                })?;
                let resume = match Checkpoint::load(&ckpt_path) {
                    Ok(cp) => Some(cp),
                    Err(CheckpointError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
                    Err(e) => {
                        // A damaged checkpoint costs the progress it held,
                        // never the job: journal the downgrade, start fresh.
                        let _ = self.journal_append(&JournalRecord::Degraded {
                            id,
                            detail: format!("checkpoint unusable, restarting from scratch: {e}"),
                        });
                        None
                    }
                };
                let mut engine =
                    (self.factory)(&spec, tensor, &token, JobAttempt { job: id, attempt })?;
                let opts = CpdOptions {
                    rank: spec.rank,
                    max_iters: spec.max_iters,
                    tol: spec.tol,
                    seed: spec.seed,
                    recovery: Default::default(),
                    checkpoint: Some(CheckpointPolicy::new(
                        &ckpt_path,
                        self.cfg.checkpoint_every.max(1),
                    )),
                    resume,
                    cancel: Some(token.clone()),
                    on_checkpoint: Some(self.checkpoint_hook(id)),
                };
                cpd_als(engine.as_mut(), &opts)
            })();
            match outcome {
                Ok(result) => {
                    attempt_hist("done").observe(attempt_t0.elapsed().as_secs_f64());
                    for event in &result.degradations {
                        let _ = self.journal_append(&JournalRecord::Degraded {
                            id,
                            detail: format!("{event:?}"),
                        });
                    }
                    self.finish_done(id, attempt, result, start);
                    return;
                }
                Err(StefError::Cancelled { deadline: false, .. }) => {
                    // Batch cancel or explicit per-job cancel: the job
                    // is unfinished and resumable from its checkpoint.
                    attempt_hist("interrupted").observe(attempt_t0.elapsed().as_secs_f64());
                    self.finish_interrupted(id, start);
                    return;
                }
                Err(e) => {
                    let deadline_expired =
                        matches!(e, StefError::Cancelled { deadline: true, .. });
                    let retryable = !deadline_expired && is_retryable(&e);
                    let retries_used = attempt - 1 + usize::from(retryable);
                    if retryable && retries_used <= self.cfg.max_retries {
                        attempt_hist("retried").observe(attempt_t0.elapsed().as_secs_f64());
                        crate::metrics::counter(
                            "stef_job_retries_total",
                            "Attempts re-queued up the retry ladder after transient failures",
                            &[],
                        )
                        .inc();
                        crate::flight::record(
                            crate::flight::FlightEvent::JobRetry,
                            id as u64,
                            (attempt + 1) as u64,
                        );
                        let delay = backoff_delay(&self.cfg, id, attempt);
                        {
                            let mut inner = lock_unpoisoned(&self.inner);
                            if let Some(job) = inner.jobs.get_mut(id) {
                                job.retries_used = retries_used;
                            }
                        }
                        let _ = self.journal_append(&JournalRecord::Retrying {
                            id,
                            attempt: attempt + 1,
                            backoff_ms: delay.as_millis() as u64,
                            error: e.to_string(),
                        });
                        if !self.responsive_sleep(delay, &token) {
                            self.finish_interrupted(id, start);
                            return;
                        }
                        attempt += 1;
                        continue;
                    }
                    attempt_hist("failed").observe(attempt_t0.elapsed().as_secs_f64());
                    self.finish_failed(id, attempt, e, start);
                    return;
                }
            }
        }
    }

    fn checkpoint_hook(&self, id: usize) -> CheckpointHook {
        let journal = Arc::clone(&self.journal);
        CheckpointHook::new(move |iteration| {
            let _ = lock_unpoisoned(&journal).append(&JournalRecord::Checkpointed { id, iteration });
        })
    }

    /// Sleeps in small slices, returning `false` when the job's token or
    /// the batch token fired (the backoff should not outlive a cancel).
    fn responsive_sleep(&self, total: Duration, token: &CancelToken) -> bool {
        let until = Instant::now() + total;
        while Instant::now() < until {
            if token.is_cancelled() || self.batch_cancelled() {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10).min(until - Instant::now()));
        }
        true
    }

    fn release_price(inner: &mut Inner, id: usize) {
        let Some(job) = inner.jobs.get(id) else { return };
        let price = job.price;
        inner.outstanding_mem = inner.outstanding_mem.saturating_sub(price.mem_bytes);
        inner.outstanding_traffic -= price.traffic;
    }

    /// Invokes the configured outcome hook (outside the state lock —
    /// the hook runs arbitrary serving-layer code).
    fn notify_outcome(&self, id: usize, outcome: JobOutcome<'_>) {
        let Some(hook) = &self.cfg.on_outcome else { return };
        let spec = self.job_spec(id);
        if let Some(spec) = spec {
            (hook.0)(id, &spec, outcome);
        }
    }

    /// One `stef_jobs_completed_total{outcome=...}` series per terminal
    /// state; the integration soak cross-checks these against the drain
    /// report.
    fn outcome_counter(outcome: &'static str) -> &'static crate::metrics::Counter {
        crate::metrics::counter(
            "stef_jobs_completed_total",
            "Jobs reaching a terminal state, by outcome",
            &[("outcome", outcome)],
        )
    }

    fn finish_done(&self, id: usize, attempts: usize, result: CpdResult, start: Instant) {
        let iterations = result.iterations;
        let fit = result.final_fit();
        let _ = self.journal_append(&JournalRecord::Done {
            id,
            attempts,
            iterations,
            fit,
        });
        Self::outcome_counter("done").inc();
        crate::flight::record(crate::flight::FlightEvent::JobDone, id as u64, attempts as u64);
        // Continuous §IV-C audit: fold this job's measured-vs-predicted
        // traffic into the per-(engine, mode) drift gauges.
        for audit in result.telemetry.model_audit() {
            crate::metrics::record_model_drift(
                &result.telemetry.engine,
                audit.mode,
                audit.measured_elems,
                audit.predicted_elems,
                self.cfg.drift_warn_threshold,
            );
        }
        self.emit_iteration_metrics(id, attempts, &result.telemetry);
        self.notify_outcome(id, JobOutcome::Done(&result));
        {
            let mut inner = lock_unpoisoned(&self.inner);
            Self::release_price(&mut inner, id);
            let Some(job) = inner.jobs.get_mut(id) else { return };
            job.status = JobStatus::Done {
                attempts,
                iterations,
                final_fit: fit,
            };
            job.result = Some(Ok(result));
        }
        self.emit_metrics(id, "done", attempts, Some((iterations, fit)), None, start);
    }

    fn finish_failed(&self, id: usize, attempts: usize, error: StefError, start: Instant) {
        let msg = error.to_string();
        let _ = self.journal_append(&JournalRecord::Failed {
            id,
            attempts,
            error: msg.clone(),
        });
        Self::outcome_counter("failed").inc();
        crate::flight::record(crate::flight::FlightEvent::JobFailed, id as u64, attempts as u64);
        self.notify_outcome(id, JobOutcome::Failed(&error));
        {
            let mut inner = lock_unpoisoned(&self.inner);
            Self::release_price(&mut inner, id);
            let Some(job) = inner.jobs.get_mut(id) else { return };
            job.status = JobStatus::Failed {
                attempts,
                error: msg.clone(),
            };
            job.result = Some(Err(error));
        }
        self.emit_metrics(id, "failed", attempts, None, Some(&msg), start);
    }

    fn finish_interrupted(&self, id: usize, start: Instant) {
        let _ = self.journal_append(&JournalRecord::Interrupted { id });
        Self::outcome_counter("interrupted").inc();
        crate::flight::record(crate::flight::FlightEvent::JobInterrupted, id as u64, 0);
        self.notify_outcome(id, JobOutcome::Interrupted);
        let attempts = {
            let mut inner = lock_unpoisoned(&self.inner);
            Self::release_price(&mut inner, id);
            let Some(job) = inner.jobs.get_mut(id) else { return };
            let attempts = match job.status {
                JobStatus::Running { attempt } => attempt,
                _ => 0,
            };
            job.status = JobStatus::Interrupted;
            attempts
        };
        self.emit_metrics(id, "interrupted", attempts, None, None, start);
    }

    /// Appends one `kind:"batch_job"` JSONL record to the PR 5 metrics
    /// sink, best-effort (metrics never fail a job).
    fn emit_metrics(
        &self,
        id: usize,
        outcome: &str,
        attempts: usize,
        done: Option<(usize, f64)>,
        error: Option<&str>,
        start: Instant,
    ) {
        let Some(metrics) = &self.metrics else { return };
        let inner = lock_unpoisoned(&self.inner);
        let Some(job) = inner.jobs.get(id) else { return };
        let mut line = format!(
            "{{\"schema\":1,\"kind\":\"batch_job\",\"id\":{id},\"tensor\":{},\"engine\":{},\
             \"outcome\":\"{outcome}\",\"attempts\":{attempts},\"mem_price_bytes\":{},\
             \"traffic_price\":{},\"wall_s\":{:.6}",
            json_str(&job.spec.tensor),
            json_str(&job.spec.engine),
            job.price.mem_bytes,
            json_num(job.price.traffic),
            start.elapsed().as_secs_f64(),
        );
        if let Some((iterations, fit)) = done {
            line.push_str(&format!(
                ",\"iterations\":{iterations},\"final_fit\":{}",
                json_num(fit)
            ));
        }
        if let Some(e) = error {
            line.push_str(&format!(",\"error\":{}", json_str(e)));
        }
        line.push_str("}\n");
        drop(inner);
        let mut file = lock_unpoisoned(metrics);
        let _ = file.write_all(line.as_bytes());
    }

    /// Appends the finished job's per-iteration schema-1 records to the
    /// metrics sink, stamped with the HTTP-visible job id and the
    /// attempt that produced them (so a retried job's iterations stay
    /// distinguishable across attempts). Best-effort, like
    /// [`Supervisor::emit_metrics`].
    fn emit_iteration_metrics(
        &self,
        id: usize,
        attempt: usize,
        report: &crate::telemetry::TelemetryReport,
    ) {
        let Some(metrics) = &self.metrics else { return };
        if report.records.is_empty() {
            return;
        }
        let text = crate::telemetry::render_metrics_jsonl_tagged(report, Some((id, attempt)));
        let mut file = lock_unpoisoned(metrics);
        let _ = file.write_all(text.as_bytes());
    }

    /// Appends one raw pre-rendered line to the metrics sink (used by
    /// the serve layer's periodic registry flush). No-op without a
    /// configured sink.
    pub(crate) fn append_metrics_line(&self, line: &str) {
        let Some(metrics) = &self.metrics else { return };
        let mut file = lock_unpoisoned(metrics);
        let _ = file.write_all(line.as_bytes());
    }
}

/// Claims the next queued job, nearest deadline first (`None` last),
/// submit order as the tiebreak.
fn claim_next(inner: &mut Inner) -> Option<usize> {
    let pos = inner
        .queue
        .iter()
        .enumerate()
        .min_by_key(|&(_, &id)| {
            let d = inner
                .jobs
                .get(id)
                .and_then(|j| j.spec.deadline)
                .map_or(u128::MAX, |d| d.as_nanos());
            (d, id)
        })
        .map(|(pos, _)| pos)?;
    Some(inner.queue.swap_remove(pos))
}

/// Capped exponential backoff with deterministic FNV-derived jitter:
/// `min(cap, base·2^(attempt-1)) + fnv(id, attempt) mod base`. The
/// jitter decorrelates jobs retrying in lockstep without pulling a
/// clock or an RNG into the supervisor's determinism story.
fn backoff_delay(cfg: &SupervisorConfig, id: usize, attempt: usize) -> Duration {
    let base = (cfg.backoff_base.as_millis() as u64).max(1);
    let cap = (cfg.backoff_cap.as_millis() as u64).max(base);
    let exp = base.saturating_mul(1u64 << (attempt.min(16) - 1).min(63));
    let jitter = fnv64(format!("{id}:{attempt}").as_bytes()) % base;
    Duration::from_millis(exp.min(cap) + jitter)
}

/// Folds one journal record into the reconstructed state (resume path).
fn replay(inner: &mut Inner, record: JournalRecord) {
    let ensure = |inner: &mut Inner, id: usize| {
        while inner.jobs.len() <= id {
            inner.jobs.push(Job {
                spec: JobSpec::new("", 1),
                price: JobPrice {
                    mem_bytes: 0,
                    traffic: 0.0,
                },
                status: JobStatus::Queued,
                token: CancelToken::new(),
                tensor: None,
                retries_used: 0,
                result: None,
            });
        }
    };
    match record {
        JournalRecord::Submitted { id, spec, price } => {
            ensure(inner, id);
            inner.jobs[id].spec = spec;
            inner.jobs[id].price = price;
            inner.jobs[id].status = JobStatus::Queued;
        }
        JournalRecord::Shed { id, .. } => {
            ensure(inner, id);
            inner.jobs[id].status = JobStatus::Shed;
        }
        JournalRecord::Started { id, attempt } => {
            ensure(inner, id);
            inner.jobs[id].status = JobStatus::Running { attempt };
        }
        JournalRecord::Checkpointed { .. } | JournalRecord::Degraded { .. } => {}
        JournalRecord::Retrying { id, attempt, .. } => {
            ensure(inner, id);
            // `attempt` is the next attempt; attempts 1..attempt-1 burned
            // attempt-1 retries... minus the free first attempt.
            inner.jobs[id].retries_used = attempt.saturating_sub(1);
        }
        JournalRecord::Interrupted { id } => {
            ensure(inner, id);
            inner.jobs[id].status = JobStatus::Interrupted;
        }
        JournalRecord::Failed {
            id,
            attempts,
            error,
        } => {
            ensure(inner, id);
            inner.jobs[id].status = JobStatus::Failed { attempts, error };
        }
        JournalRecord::Done {
            id,
            attempts,
            iterations,
            fit,
        } => {
            ensure(inner, id);
            inner.jobs[id].status = JobStatus::Done {
                attempts,
                iterations,
                final_fit: fit,
            };
        }
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ReferenceEngine;
    use crate::fault::{Fault, FaultyEngine};
    use std::sync::atomic::AtomicUsize;
    use workloads::power_law_tensor;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stef-supervisor-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn test_loader() -> TensorLoader {
        Arc::new(|spec: &str| {
            // "pl:<d0>x<d1>x<d2>:<nnz>:<seed>"
            let parts: Vec<&str> = spec.split(':').collect();
            if parts.len() != 4 || parts[0] != "pl" {
                return Err(StefError::Input(format!("bad test spec '{spec}'")));
            }
            let dims: Vec<usize> = parts[1].split('x').map(|t| t.parse().unwrap()).collect();
            let nnz: usize = parts[2].parse().unwrap();
            let seed: u64 = parts[3].parse().unwrap();
            let skews = vec![0.5; dims.len()];
            Ok(power_law_tensor(&dims, nnz, &skews, seed))
        })
    }

    fn reference_factory() -> EngineFactory {
        Arc::new(|_spec, tensor, _token, _attempt| {
            Ok(Box::new(ReferenceEngine::new(tensor.clone())) as Box<dyn MttkrpEngine>)
        })
    }

    fn cfg_in(dir: &Path) -> SupervisorConfig {
        let mut cfg = SupervisorConfig::new(dir.join("batch.journal"), dir.join("ckpts"));
        cfg.backoff_base = Duration::from_millis(1);
        cfg.backoff_cap = Duration::from_millis(4);
        cfg
    }

    #[test]
    fn journal_records_round_trip() {
        let records = vec![
            JournalRecord::Submitted {
                id: 0,
                spec: JobSpec {
                    tensor: "suite:amazon reviews.tns".into(),
                    rank: 8,
                    max_iters: 30,
                    tol: 1e-6,
                    seed: 7,
                    engine: "stef2".into(),
                    deadline: Some(Duration::from_millis(1500)),
                    model: Some("amazon reviews %model!".into()),
                },
                price: JobPrice {
                    mem_bytes: 123_456,
                    traffic: 9.25e7,
                },
            },
            JournalRecord::Shed {
                id: 1,
                resource: "memory".into(),
                required: 2.0e9,
                outstanding: 7.5e9,
                envelope: 8.0e9,
            },
            JournalRecord::Started { id: 0, attempt: 1 },
            JournalRecord::Checkpointed { id: 0, iteration: 12 },
            JournalRecord::Degraded {
                id: 0,
                detail: "MemoDropped { level: 1, bytes: 640 }".into(),
            },
            JournalRecord::Retrying {
                id: 0,
                attempt: 2,
                backoff_ms: 103,
                error: "worker panic at iteration 3 (pool healed): boom!".into(),
            },
            JournalRecord::Interrupted { id: 0 },
            JournalRecord::Failed {
                id: 0,
                attempts: 3,
                error: "I/O error: no space % left !".into(),
            },
            JournalRecord::Done {
                id: 0,
                attempts: 2,
                iterations: 30,
                fit: 0.953,
            },
        ];
        for r in &records {
            let body = r.encode();
            let back = JournalRecord::decode(&body).expect(&body);
            assert_eq!(&back, r, "{body}");
        }
    }

    #[test]
    fn journal_file_scan_tolerates_torn_tail_only() {
        let dir = tmp_dir("torn");
        let path = dir.join("j.journal");
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&JournalRecord::Started { id: 0, attempt: 1 }).unwrap();
        w.append(&JournalRecord::Checkpointed { id: 0, iteration: 3 }).unwrap();
        drop(w);

        // Torn final line: scan succeeds, drops it, flags it, and
        // reports the byte offset where the verified prefix ends.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let scan = scan_journal(&path).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len as usize, full.find("checkpointed").unwrap());

        // A content-complete final line missing only its newline is
        // torn too: appending after it would fuse two records.
        std::fs::write(&path, full.trim_end_matches('\n')).unwrap();
        let scan = scan_journal(&path).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.records.len(), 1);

        // The same damage mid-file (valid line after it) is corruption.
        std::fs::write(&path, full.replace("started 0", "started 9")).unwrap();
        match scan_journal(&path) {
            Err(StefError::Checkpoint(CheckpointError::Corrupt { reason })) => {
                assert!(reason.contains("line 2"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_future_version_is_typed() {
        let dir = tmp_dir("ver");
        let path = dir.join("j.journal");
        std::fs::write(&path, "stef-journal v99 be\n").unwrap();
        match scan_journal(&path) {
            Err(StefError::CheckpointVersion { found: 99, .. }) => {}
            other => panic!("expected CheckpointVersion, got {other:?}"),
        }
        std::fs::write(&path, "stef-journal v1 le\n").unwrap();
        assert!(matches!(
            scan_journal(&path),
            Err(StefError::CheckpointVersion { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_runs_to_done_and_results_are_takeable() {
        let dir = tmp_dir("done");
        let sup = Supervisor::new(cfg_in(&dir), test_loader(), reference_factory()).unwrap();
        let a = sup.submit(JobSpec::new("pl:12x10x8:300:1", 3)).unwrap();
        let b = sup.submit(JobSpec::new("pl:10x9x8:250:2", 2)).unwrap();
        let report = sup.run_all();
        assert_eq!(report.done(), 2, "{report:?}");
        assert!(report.exit_error().is_none());
        for id in [a, b] {
            assert!(matches!(sup.status(id), Some(JobStatus::Done { .. })));
            assert!(sup.take_result(id).unwrap().is_ok());
            assert!(sup.take_result(id).is_none(), "result moves out once");
        }
        // The journal ends with terminal records for both jobs.
        let scan = scan_journal(&dir.join("batch.journal")).unwrap();
        let done_ids: Vec<usize> = scan
            .records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Done { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(done_ids.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn over_envelope_submission_is_shed_and_admitted_jobs_finish() {
        let dir = tmp_dir("shed");
        let mut cfg = cfg_in(&dir);
        let probe = power_law_tensor(&[12, 10, 8], 300, &[0.5, 0.5, 0.5], 1);
        let price = price_job(&probe, 3, 1, cfg.cache_bytes);
        // Room for exactly one copy of this job.
        cfg.memory_envelope = price.mem_bytes + price.mem_bytes / 2;
        let sup = Supervisor::new(cfg, test_loader(), reference_factory()).unwrap();
        let admitted = sup.submit(JobSpec::new("pl:12x10x8:300:1", 3)).unwrap();
        let err = sup.submit(JobSpec::new("pl:12x10x8:300:1", 3)).unwrap_err();
        match &err {
            StefError::Overloaded {
                resource, envelope, ..
            } => {
                assert_eq!(*resource, "memory");
                assert!(*envelope > 0.0);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(sup.status(1), Some(JobStatus::Shed));
        let report = sup.run_all();
        assert_eq!(report.done(), 1);
        assert_eq!(report.shed(), 1);
        assert!(matches!(
            report.exit_error(),
            Some(StefError::Overloaded { .. })
        ));
        assert!(matches!(sup.status(admitted), Some(JobStatus::Done { .. })));
        // Shedding is journaled.
        let scan = scan_journal(&dir.join("batch.journal")).unwrap();
        assert!(scan
            .records
            .iter()
            .any(|r| matches!(r, JournalRecord::Shed { id: 1, .. })));
        // The envelope drains with the batch: a resubmission now fits.
        assert!(sup.submit(JobSpec::new("pl:12x10x8:300:1", 3)).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_failure_consumes_exactly_one_retry() {
        let dir = tmp_dir("retry");
        let built = Arc::new(AtomicUsize::new(0));
        let b2 = built.clone();
        let factory: EngineFactory = Arc::new(move |_spec, tensor, _token, at: JobAttempt| {
            b2.fetch_add(1, Ordering::Relaxed);
            let mut faults = Vec::new();
            if at.attempt == 1 {
                faults.push(Fault::TransientErrorOnce { at: 2 });
            }
            Ok(Box::new(FaultyEngine::new(ReferenceEngine::new(tensor.clone()), faults))
                as Box<dyn MttkrpEngine>)
        });
        let sup = Supervisor::new(cfg_in(&dir), test_loader(), factory).unwrap();
        let id = sup.submit(JobSpec::new("pl:12x10x8:300:3", 3)).unwrap();
        let report = sup.run_all();
        assert_eq!(report.done(), 1, "{report:?}");
        match sup.status(id) {
            Some(JobStatus::Done { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected Done after one retry, got {other:?}"),
        }
        assert_eq!(built.load(Ordering::Relaxed), 2, "one engine per attempt");
        let scan = scan_journal(&dir.join("batch.journal")).unwrap();
        let retries: Vec<&JournalRecord> = scan
            .records
            .iter()
            .filter(|r| matches!(r, JournalRecord::Retrying { .. }))
            .collect();
        assert_eq!(retries.len(), 1, "exactly one retry journaled");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn terminal_errors_do_not_retry() {
        let dir = tmp_dir("terminal");
        let built = Arc::new(AtomicUsize::new(0));
        let b2 = built.clone();
        let factory: EngineFactory = Arc::new(move |_s, _t, _k, _a| {
            b2.fetch_add(1, Ordering::Relaxed);
            Err(StefError::Input("deliberately bad".into()))
        });
        let sup = Supervisor::new(cfg_in(&dir), test_loader(), factory).unwrap();
        let id = sup.submit(JobSpec::new("pl:8x8x8:100:1", 2)).unwrap();
        let report = sup.run_all();
        assert_eq!(report.failed(), 1);
        assert_eq!(built.load(Ordering::Relaxed), 1, "no retry for terminal errors");
        assert!(matches!(
            sup.take_result(id),
            Some(Err(StefError::Input(_)))
        ));
        assert!(matches!(
            report.exit_error(),
            Some(StefError::BatchFailed { failed: 1, total: 1 })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_requeues_unfinished_jobs_and_completes() {
        let dir = tmp_dir("resume");
        let cfg = cfg_in(&dir);
        {
            let sup =
                Supervisor::new(cfg.clone(), test_loader(), reference_factory()).unwrap();
            sup.submit(JobSpec::new("pl:12x10x8:300:1", 3)).unwrap();
            sup.submit(JobSpec::new("pl:10x9x8:250:2", 2)).unwrap();
            // Simulate a crash: drop without running.
        }
        let sup = Supervisor::resume(cfg, test_loader(), reference_factory()).unwrap();
        assert_eq!(sup.status(0), Some(JobStatus::Queued));
        assert_eq!(sup.status(1), Some(JobStatus::Queued));
        let report = sup.run_all();
        assert_eq!(report.done(), 2, "{report:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_keeps_terminal_jobs_specs_across_restart() {
        let dir = tmp_dir("compact-spec");
        let cfg = cfg_in(&dir);
        {
            let sup = Supervisor::new(cfg.clone(), test_loader(), reference_factory()).unwrap();
            let mut spec = JobSpec::new("pl:12x10x8:300:1", 3);
            spec.model = Some("named-model".into());
            sup.submit(spec).unwrap();
            let report = sup.run_all();
            assert_eq!(report.done(), 1, "{report:?}");
            assert!(sup.compact_journal().unwrap() > 0);
        }
        // The compacted journal holds exactly the submitted+done pair,
        // so a restarted daemon still answers status queries for the
        // finished job with its full spec, not an empty placeholder.
        let scan = scan_journal(&cfg.journal_path).unwrap();
        assert_eq!(scan.records.len(), 2, "{:?}", scan.records);
        assert!(matches!(scan.records[0], JournalRecord::Submitted { id: 0, .. }));
        assert!(matches!(scan.records[1], JournalRecord::Done { id: 0, .. }));
        let sup = Supervisor::resume(cfg, test_loader(), reference_factory()).unwrap();
        assert!(matches!(sup.status(0), Some(JobStatus::Done { .. })));
        let spec = sup.job_spec(0).unwrap();
        assert_eq!(spec.model_name(), "named-model");
        assert_eq!(spec.tensor, "pl:12x10x8:300:1");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_truncates_torn_tail_so_the_journal_stays_scannable() {
        let dir = tmp_dir("torn-resume");
        let cfg = cfg_in(&dir);
        {
            let sup = Supervisor::new(cfg.clone(), test_loader(), reference_factory()).unwrap();
            sup.submit(JobSpec::new("pl:12x10x8:300:1", 3)).unwrap();
            sup.submit(JobSpec::new("pl:10x9x8:250:2", 2)).unwrap();
            // Crash without running.
        }
        // Tear the tail of job 1's submitted record.
        let journal = dir.join("batch.journal");
        let full = std::fs::read_to_string(&journal).unwrap();
        std::fs::write(&journal, &full[..full.len() - 9]).unwrap();
        assert!(scan_journal(&journal).unwrap().torn_tail);

        // Resume drops the torn record (job 1 was never durably
        // admitted), truncates it away, and finishes job 0. The
        // journal must stay cleanly scannable afterwards — without the
        // truncation the first appended record fuses with the torn
        // bytes and every later scan reports mid-file corruption.
        let sup = Supervisor::resume(cfg, test_loader(), reference_factory()).unwrap();
        assert_eq!(sup.status(0), Some(JobStatus::Queued));
        assert_eq!(sup.status(1), None, "torn submitted record is dropped");
        let report = sup.run_all();
        assert_eq!(report.done(), 1, "{report:?}");
        let scan = scan_journal(&journal).unwrap();
        assert!(!scan.torn_tail, "truncation removed the torn bytes");
        assert!(scan
            .records
            .iter()
            .any(|r| matches!(r, JournalRecord::Done { id: 0, .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resumed_job_loader_failure_uses_the_retry_ladder() {
        let dir = tmp_dir("load-retry");
        let cfg = cfg_in(&dir);
        {
            let sup = Supervisor::new(cfg.clone(), test_loader(), reference_factory()).unwrap();
            sup.submit(JobSpec::new("pl:12x10x8:300:1", 3)).unwrap();
            // Crash without running: the resumed process must reload.
        }
        let calls = Arc::new(AtomicUsize::new(0));
        let c2 = calls.clone();
        let base = test_loader();
        let flaky: TensorLoader = Arc::new(move |spec| {
            if c2.fetch_add(1, Ordering::Relaxed) == 0 {
                Err(StefError::Tns(sptensor::TnsError::Io(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "transient read failure",
                ))))
            } else {
                base(spec)
            }
        });
        let sup = Supervisor::resume(cfg, flaky, reference_factory()).unwrap();
        let report = sup.run_all();
        assert_eq!(report.done(), 1, "{report:?}");
        match sup.status(0) {
            Some(JobStatus::Done { attempts, .. }) => {
                assert_eq!(attempts, 2, "reload failure burns one retry, not the job")
            }
            other => panic!("expected Done, got {other:?}"),
        }
        let scan = scan_journal(&dir.join("batch.journal")).unwrap();
        assert!(
            scan.records
                .iter()
                .any(|r| matches!(r, JournalRecord::Retrying { .. })),
            "{:?}",
            scan.records
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn submit_while_draining_is_rejected() {
        let dir = tmp_dir("draining");
        let slot: Arc<std::sync::OnceLock<Arc<Supervisor>>> = Arc::new(std::sync::OnceLock::new());
        let observed: Arc<Mutex<Option<Result<usize, StefError>>>> = Arc::new(Mutex::new(None));
        let (s2, o2) = (slot.clone(), observed.clone());
        // The factory runs inside run_all's drain, so a submit issued
        // from it exercises the mid-drain path deterministically.
        let factory: EngineFactory = Arc::new(move |_spec, tensor, _token, _at| {
            if let Some(sup) = s2.get() {
                *o2.lock().unwrap() = Some(sup.submit(JobSpec::new("pl:8x8x8:100:1", 2)));
            }
            Ok(Box::new(ReferenceEngine::new(tensor.clone())) as Box<dyn MttkrpEngine>)
        });
        let sup = Arc::new(Supervisor::new(cfg_in(&dir), test_loader(), factory).unwrap());
        slot.set(sup.clone()).ok().unwrap();
        sup.submit(JobSpec::new("pl:12x10x8:300:1", 3)).unwrap();
        let report = sup.run_all();
        assert_eq!(report.done(), 1, "{report:?}");
        match observed.lock().unwrap().take() {
            Some(Err(StefError::Input(msg))) => assert!(msg.contains("draining"), "{msg}"),
            other => panic!("mid-drain submit must be refused, got {other:?}"),
        }
        // After run_all returns, submits work again.
        assert!(sup.submit(JobSpec::new("pl:10x9x8:250:2", 2)).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exit_error_counts_unfinished_queued_jobs() {
        let report = BatchReport {
            outcomes: vec![
                (
                    0,
                    JobStatus::Done {
                        attempts: 1,
                        iterations: 3,
                        final_fit: 0.9,
                    },
                ),
                (1, JobStatus::Queued),
            ],
        };
        assert!(
            matches!(report.exit_error(), Some(StefError::Cancelled { .. })),
            "a queued-but-never-run job is not a clean batch"
        );
    }

    #[test]
    fn fresh_supervisor_refuses_existing_journal() {
        let dir = tmp_dir("refuse");
        let cfg = cfg_in(&dir);
        drop(Supervisor::new(cfg.clone(), test_loader(), reference_factory()).unwrap());
        assert!(matches!(
            Supervisor::new(cfg, test_loader(), reference_factory()),
            Err(StefError::Input(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_cancel_interrupts_queued_jobs() {
        let dir = tmp_dir("cancel");
        let mut cfg = cfg_in(&dir);
        let batch = CancelToken::new();
        cfg.cancel = Some(batch.clone());
        let sup = Supervisor::new(cfg, test_loader(), reference_factory()).unwrap();
        sup.submit(JobSpec::new("pl:12x10x8:300:1", 3)).unwrap();
        sup.submit(JobSpec::new("pl:10x9x8:250:2", 2)).unwrap();
        batch.cancel();
        let report = sup.run_all();
        assert_eq!(report.interrupted(), 2, "{report:?}");
        assert!(matches!(
            report.exit_error(),
            Some(StefError::Cancelled { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deadline_orders_the_queue() {
        let mut inner = Inner {
            jobs: Vec::new(),
            queue: Vec::new(),
            outstanding_mem: 0,
            outstanding_traffic: 0.0,
        };
        for deadline in [None, Some(Duration::from_secs(5)), Some(Duration::from_secs(1))] {
            let mut spec = JobSpec::new("x", 1);
            spec.deadline = deadline;
            inner.jobs.push(Job {
                spec,
                price: JobPrice {
                    mem_bytes: 0,
                    traffic: 0.0,
                },
                status: JobStatus::Queued,
                token: CancelToken::new(),
                tensor: None,
                retries_used: 0,
                result: None,
            });
            inner.queue.push(inner.jobs.len() - 1);
        }
        assert_eq!(claim_next(&mut inner), Some(2), "1s deadline first");
        assert_eq!(claim_next(&mut inner), Some(1), "5s next");
        assert_eq!(claim_next(&mut inner), Some(0), "no deadline last");
        assert_eq!(claim_next(&mut inner), None);
    }

    #[test]
    fn backoff_is_capped_and_deterministic() {
        let dir = tmp_dir("backoff");
        let mut cfg = cfg_in(&dir);
        cfg.backoff_base = Duration::from_millis(100);
        cfg.backoff_cap = Duration::from_millis(400);
        let d1 = backoff_delay(&cfg, 3, 1);
        let d2 = backoff_delay(&cfg, 3, 1);
        assert_eq!(d1, d2, "jitter is deterministic");
        assert!(d1 >= Duration::from_millis(100) && d1 < Duration::from_millis(200));
        // Attempt 10 hits the cap (+ jitter < base).
        let big = backoff_delay(&cfg, 3, 10);
        assert!(big >= Duration::from_millis(400) && big < Duration::from_millis(500));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_sink_gets_one_record_per_job() {
        let dir = tmp_dir("metrics");
        let mut cfg = cfg_in(&dir);
        let metrics = dir.join("metrics.jsonl");
        cfg.metrics_path = Some(metrics.clone());
        let sup = Supervisor::new(cfg, test_loader(), reference_factory()).unwrap();
        sup.submit(JobSpec::new("pl:12x10x8:300:1", 3)).unwrap();
        sup.run_all();
        let text = std::fs::read_to_string(&metrics).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Exactly one batch_job summary record per job, preceded by the
        // job's per-iteration records, each tagged with job id and
        // attempt number.
        let summaries: Vec<&&str> = lines
            .iter()
            .filter(|l| l.contains("\"kind\":\"batch_job\""))
            .collect();
        assert_eq!(summaries.len(), 1, "{text}");
        assert!(summaries[0].contains("\"outcome\":\"done\""));
        assert!(summaries[0].contains("\"schema\":1"));
        assert_eq!(*summaries[0], *lines.last().unwrap(), "summary must come last");
        let iterations: Vec<&&str> = lines
            .iter()
            .filter(|l| l.contains("\"iteration\":"))
            .collect();
        assert!(!iterations.is_empty(), "{text}");
        for line in iterations {
            assert!(line.contains("\"job\":0,\"attempt\":1,"), "{line}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
