//! The sparsity-aware data-movement model (paper §IV) and configuration
//! search.
//!
//! For a candidate configuration — a set `M` of memoized levels and a
//! choice of last-two-mode order — the model estimates the total memory
//! traffic (in `f64` elements) of one CPD iteration's worth of MTTKRPs,
//! using only per-level fiber counts `m_i`, mode lengths `n_i`, the rank
//! `R` and a cache-size parameter:
//!
//! * factor-matrix traffic is `DM_factor_i(x)`: `x·R` when the matrix
//!   exceeds the cache, else at most one cold load `min(N_i·R, x·R)`;
//! * index-structure traffic is `2·m_l` per traversed level (fiber ids +
//!   pointers);
//! * memoized partials cost `m_i·R` to write during mode 0 (counted on
//!   both the read and write sides, following the paper's write-allocate
//!   accounting) and `m_k·R` to read back;
//! * a mode `i > 0` with a saved level `k ≥ i` only traverses levels
//!   `0..=k`; otherwise it traverses the whole tree.
//!
//! The search is exhaustive over `M ⊆ {1..=d-2}` × {base order, swapped
//! order} — at most `2^(d-1)` configurations, evaluated in microseconds —
//! exactly as the paper prescribes ("our model exhaustively checks every
//! configuration").
//!
//! One deviation from the paper's typeset formulas, recorded in
//! DESIGN.md: their `DM_mem_k_read` sums an `m_l·R` partial-read term
//! over *all* levels `l < k`; we charge the partial read once, `m_k·R`,
//! where the partial actually lives, and charge recompute factor reads
//! for levels `i+1..=k`. This keeps the model's units coherent without
//! changing any qualitative decision.

use sptensor::{count_fibers_if_last_two_swapped, Csf};

/// The per-level quantities the model consumes, for one mode order.
#[derive(Clone, Debug, PartialEq)]
pub struct LevelProfile {
    /// Mode length at each level, root to leaf.
    pub dims: Vec<usize>,
    /// Fiber count `m_l` at each level (`fibers[d-1] == nnz`).
    pub fibers: Vec<usize>,
    /// Decomposition rank `R`.
    pub rank: usize,
    /// Cache size in *elements* (`cache_bytes / 8`).
    pub cache_elems: usize,
}

impl LevelProfile {
    /// Reads the profile off a built CSF.
    pub fn from_csf(csf: &Csf, rank: usize, cache_bytes: usize) -> Self {
        LevelProfile {
            dims: csf.level_dims().to_vec(),
            fibers: csf.fiber_counts(),
            rank,
            cache_elems: cache_bytes / std::mem::size_of::<f64>(),
        }
    }

    /// The profile the CSF *would* have with its last two levels swapped,
    /// computed via Algorithm 9 without building that CSF: levels
    /// `0..d-2` are unchanged, `m_{d-2}` comes from the swap counter and
    /// the leaf count is `nnz`.
    pub fn swapped_from_csf(csf: &Csf, rank: usize, cache_bytes: usize) -> Self {
        let d = csf.ndim();
        let mut dims = csf.level_dims().to_vec();
        dims.swap(d - 1, d - 2);
        let mut fibers = csf.fiber_counts();
        if d >= 2 {
            fibers[d - 2] = count_fibers_if_last_two_swapped(csf);
            fibers[d - 1] = csf.nnz();
        }
        LevelProfile {
            dims,
            fibers,
            rank,
            cache_elems: cache_bytes / std::mem::size_of::<f64>(),
        }
    }

    fn d(&self) -> usize {
        self.dims.len()
    }

    /// `DM_factor_i(x)`: traffic of `x` row accesses to the level-`l`
    /// factor matrix.
    fn dm_factor(&self, l: usize, x: usize) -> f64 {
        let footprint = (self.dims[l] * self.rank) as f64;
        let demand = (x * self.rank) as f64;
        if footprint > self.cache_elems as f64 {
            demand
        } else {
            footprint.min(demand)
        }
    }

    /// Read traffic of a full-tree traversal (`DM_no_mem_read`).
    fn dm_no_mem_read(&self) -> f64 {
        (0..self.d())
            .map(|l| 2.0 * self.fibers[l] as f64 + self.dm_factor(l, self.fibers[l]))
            .sum()
    }

    /// Read traffic of computing mode `i > 0` from a saved level `k ≥ i`.
    fn dm_mem_read(&self, i: usize, k: usize) -> f64 {
        debug_assert!(i > 0 && k >= i && k <= self.d() - 2);
        let structure: f64 = (0..=k).map(|l| 2.0 * self.fibers[l] as f64).sum();
        let krp_factors: f64 = (0..i).map(|l| self.dm_factor(l, self.fibers[l])).sum();
        let recompute_factors: f64 = (i + 1..=k).map(|l| self.dm_factor(l, self.fibers[l])).sum();
        let partial = (self.fibers[k] * self.rank) as f64;
        structure + krp_factors + recompute_factors + partial
    }

    /// Total modeled traffic (elements) of one CPD iteration's MTTKRPs
    /// under memoization set `saved` (`saved[l]` = memoize `P^(l)`).
    pub fn total_traffic(&self, saved: &[bool]) -> f64 {
        let d = self.d();
        debug_assert_eq!(saved.len(), d);
        let memo_rows: f64 = (0..d)
            .filter(|&l| saved[l])
            .map(|l| (self.fibers[l] * self.rank) as f64)
            .sum();

        // Mode 0: full traversal, plus memo write-allocate traffic on
        // both sides (paper DM_read(0) / DM_write(0)).
        let mut total = self.dm_no_mem_read() + memo_rows; // reads
        total += (self.dims[0] * self.rank) as f64 + memo_rows; // writes

        for i in 1..d {
            let k = (i..=d.saturating_sub(2)).find(|&k| saved[k]);
            let read = match k {
                Some(k) => self.dm_mem_read(i, k),
                None => self.dm_no_mem_read(),
            };
            let write = self.dm_factor(i, self.fibers[i]);
            total += read + write;
        }
        total
    }

    /// Per-level breakdown of [`LevelProfile::total_traffic`]: entry
    /// `l` is the modeled `(reads, writes)` in elements of the MTTKRP
    /// for the mode at level `l` (index 0 = the root/mode-0 saving
    /// pass, which carries the memo write-allocate traffic on both
    /// sides). The component sums equal `total_traffic` exactly — the
    /// telemetry model audit joins these against the measured
    /// per-mode counts.
    pub fn traffic_by_level(&self, saved: &[bool]) -> Vec<(f64, f64)> {
        let d = self.d();
        debug_assert_eq!(saved.len(), d);
        let memo_rows: f64 = (0..d)
            .filter(|&l| saved[l])
            .map(|l| (self.fibers[l] * self.rank) as f64)
            .sum();
        let mut per_level = Vec::with_capacity(d);
        per_level.push((
            self.dm_no_mem_read() + memo_rows,
            (self.dims[0] * self.rank) as f64 + memo_rows,
        ));
        for i in 1..d {
            let k = (i..=d.saturating_sub(2)).find(|&k| saved[k]);
            let read = match k {
                Some(k) => self.dm_mem_read(i, k),
                None => self.dm_no_mem_read(),
            };
            per_level.push((read, self.dm_factor(i, self.fibers[i])));
        }
        per_level
    }

    /// Bytes of the memoized partials under `saved` (Table II's first
    /// column, excluding the `T` replica rows which are O(T·R)).
    pub fn partial_bytes(&self, saved: &[bool]) -> usize {
        (0..self.d())
            .filter(|&l| saved[l])
            .map(|l| self.fibers[l] * self.rank * std::mem::size_of::<f64>())
            .sum()
    }

    /// Bytes of the factor matrices at this rank.
    pub fn factor_bytes(&self) -> usize {
        self.dims
            .iter()
            .map(|&n| n * self.rank * std::mem::size_of::<f64>())
            .sum()
    }
}

/// A chosen configuration: which order to build the CSF in and which
/// levels to memoize.
#[derive(Clone, Debug, PartialEq)]
pub struct MemoPlan {
    /// Swap the last two CSF levels relative to the mode-length order?
    pub swap_last_two: bool,
    /// Per-level save flags (indices are levels of the *chosen* order).
    pub save: Vec<bool>,
    /// Modeled traffic of the chosen configuration (elements).
    pub predicted: f64,
    /// Modeled traffic of the best configuration of the *other* order —
    /// what Fig. 6's "opposite mode order" ablation runs.
    pub predicted_other_order: f64,
}

/// Enumerates every memoization subset for one order and returns the
/// best `(save, traffic)`.
pub fn best_memo_set(profile: &LevelProfile) -> (Vec<bool>, f64) {
    let d = profile.dims.len();
    let memoizable: Vec<usize> = if d >= 3 {
        (1..=d - 2).collect()
    } else {
        Vec::new()
    };
    let mut best: Option<(Vec<bool>, f64)> = None;
    for mask in 0..(1u32 << memoizable.len()) {
        let mut save = vec![false; d];
        for (bit, &l) in memoizable.iter().enumerate() {
            save[l] = mask & (1 << bit) != 0;
        }
        let traffic = profile.total_traffic(&save);
        if best.as_ref().is_none_or(|(_, t)| traffic < *t) {
            best = Some((save, traffic));
        }
    }
    best.expect("at least the empty set is evaluated")
}

/// Full model-driven choice across both orders (paper §IV-B/C).
pub fn choose_plan(base: &LevelProfile, swapped: &LevelProfile) -> MemoPlan {
    let (save_base, t_base) = best_memo_set(base);
    let (save_swap, t_swap) = best_memo_set(swapped);
    if t_swap < t_base {
        MemoPlan {
            swap_last_two: true,
            save: save_swap,
            predicted: t_swap,
            predicted_other_order: t_base,
        }
    } else {
        MemoPlan {
            swap_last_two: false,
            save: save_base,
            predicted: t_base,
            predicted_other_order: t_swap,
        }
    }
}

/// The AdaTM-style objective: minimize arithmetic operations only.
/// Saving a level never increases FLOPs, so pure op-count prefers saving
/// everything; AdaTM stores only Θ(√d) partials, so we keep the
/// `ceil(√(d-2))` levels with the largest op savings. (Mode order is not
/// considered — AdaTM does not model data movement.)
pub fn op_count_memo_set(profile: &LevelProfile) -> Vec<bool> {
    let d = profile.dims.len();
    let mut save = vec![false; d];
    if d < 3 {
        return save;
    }
    // Op savings of memoizing level l: every mode i <= l skips the
    // subtree below l, i.e. saves roughly Σ_{l' > l} m_l' · R ops per
    // consumer mode; consumers are modes 1..=l.
    let mut gains: Vec<(usize, f64)> = (1..=d - 2)
        .map(|l| {
            let below: f64 = (l + 1..d).map(|l2| profile.fibers[l2] as f64).sum();
            (l, below * l as f64)
        })
        .collect();
    gains.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let keep = ((d - 2) as f64).sqrt().ceil() as usize;
    for &(l, _) in gains.iter().take(keep.max(1)) {
        save[l] = true;
    }
    save
}

/// Raw (cache-oblivious) read/write element counts for one CPD
/// iteration under a memoization set — the quantities of the paper's
/// §IV-A motivating example ("saving all the intermediate results for
/// *uber* requires 62M reads and 22M writes; not saving the biggest
/// partial results in 24M reads and 238K writes").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RawTraffic {
    /// Elements read from memory (index structure + factor rows +
    /// partial-result rows).
    pub reads: f64,
    /// Elements written (outputs + memoized partials).
    pub writes: f64,
}

impl LevelProfile {
    /// Computes [`RawTraffic`] for the given save set: the same
    /// accounting as [`LevelProfile::total_traffic`] but with no cache
    /// clamping and reads/writes reported separately.
    pub fn raw_traffic(&self, saved: &[bool]) -> RawTraffic {
        let d = self.d();
        let r = self.rank as f64;
        let structure_all: f64 = self.fibers.iter().map(|&m| 2.0 * m as f64).sum();
        let factors_all: f64 = self.fibers.iter().map(|&m| m as f64 * r).sum();
        let memo_rows: f64 = (0..d)
            .filter(|&l| saved[l])
            .map(|l| self.fibers[l] as f64 * r)
            .sum();

        // Mode 0: full traversal; memoized partials are written.
        let mut reads = structure_all + factors_all;
        let mut writes = self.dims[0] as f64 * r + memo_rows;

        for i in 1..d {
            let k = (i..=d.saturating_sub(2)).find(|&k| saved[k]);
            match k {
                Some(k) => {
                    let structure: f64 = (0..=k).map(|l| 2.0 * self.fibers[l] as f64).sum();
                    let krp: f64 = (0..i).map(|l| self.fibers[l] as f64 * r).sum();
                    let recompute: f64 = (i + 1..=k).map(|l| self.fibers[l] as f64 * r).sum();
                    reads += structure + krp + recompute + self.fibers[k] as f64 * r;
                }
                None => {
                    reads += structure_all + factors_all;
                }
            }
            writes += self.fibers[i] as f64 * r;
        }
        RawTraffic { reads, writes }
    }
}

/// One budget-driven relaxation of the execution plan, recorded on
/// `CpdResult::degradations` so callers can see *why* a constrained run
/// was slower than an unconstrained one (it is never less accurate —
/// every degraded schedule computes the same numbers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DegradationEvent {
    /// The memoized partial `P^(level)` was dropped from the plan; its
    /// consumers recompute from scratch. `bytes` is the arena freed.
    MemoDropped {
        /// CSF level whose partial was dropped.
        level: usize,
        /// Arena bytes the drop freed.
        bytes: usize,
    },
    /// Privatized accumulation at `level` fell back to atomic adds on
    /// the shared output. `bytes` is the per-plan reduction in the
    /// privatized-output pool after the fallback.
    PrivatizedToAtomic {
        /// CSF level that fell back.
        level: usize,
        /// Pool bytes the fallback freed.
        bytes: usize,
    },
}

impl std::fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradationEvent::MemoDropped { level, bytes } => {
                write!(f, "dropped memoized P^({level}) ({bytes} bytes)")
            }
            DegradationEvent::PrivatizedToAtomic { level, bytes } => write!(
                f,
                "level {level} accumulation fell back privatized -> atomic ({bytes} bytes)"
            ),
        }
    }
}

/// The memory-budget fit: possibly-degraded save flags and privatization
/// flags, plus the events describing each relaxation.
#[derive(Clone, Debug, PartialEq)]
pub struct BudgetFit {
    /// Per-level memoization flags after fitting.
    pub save: Vec<bool>,
    /// Per-level privatization flags after fitting (`false` = atomic).
    pub privatized: Vec<bool>,
    /// The relaxations applied, in order.
    pub events: Vec<DegradationEvent>,
}

/// Arena bytes of the memoized partial `P^(level)` — matches
/// `PartialStore::allocate` exactly: `(m_level + T)` rows of `R` f64s
/// (the `+T` is the boundary-replication shift of §II-D).
pub fn partial_arena_bytes(profile: &LevelProfile, level: usize, nthreads: usize) -> usize {
    (profile.fibers[level] + nthreads) * profile.rank * std::mem::size_of::<f64>()
}

/// Bytes of the privatized-output pool for the given privatization
/// flags — matches `Workspace`: one `max_n_u × R` block per logical
/// thread, row-padded to 8 elements.
pub fn priv_pool_bytes(profile: &LevelProfile, privatized: &[bool], nthreads: usize) -> usize {
    let max_rows = profile
        .dims
        .iter()
        .zip(privatized)
        .skip(1) // level 0 owns its rows; no pool needed
        .filter(|&(_, &p)| p)
        .map(|(&n, _)| n)
        .max()
        .unwrap_or(0);
    let stride = (max_rows * profile.rank + 7) & !7;
    nthreads * stride * std::mem::size_of::<f64>()
}

/// Fits the plan into `budget` bytes by degrading it (§IV-C pricing
/// applied in reverse): drop memoized partials largest-first, then flip
/// privatized levels to atomic accumulation largest-first. `fixed_bytes`
/// is the non-degradable floor (kernel scratch, traversal stacks).
///
/// Returns the degraded plan, or `Err(required)` — the floor in bytes —
/// when even the minimal plan (no memoization, all-atomic) exceeds the
/// budget. A `budget` of 0 means unlimited and returns the input
/// unchanged.
pub fn fit_memory_budget(
    profile: &LevelProfile,
    save: Vec<bool>,
    privatized: Vec<bool>,
    nthreads: usize,
    fixed_bytes: usize,
    budget: usize,
) -> Result<BudgetFit, usize> {
    let mut fit = BudgetFit {
        save,
        privatized,
        events: Vec::new(),
    };
    if budget == 0 {
        return Ok(fit);
    }
    let cost = |f: &BudgetFit| -> usize {
        let partials: usize = (0..profile.dims.len())
            .filter(|&l| f.save[l])
            .map(|l| partial_arena_bytes(profile, l, nthreads))
            .sum();
        fixed_bytes + partials + priv_pool_bytes(profile, &f.privatized, nthreads)
    };
    while cost(&fit) > budget {
        // Largest memoized partial first: biggest single win, and memo
        // only costs traffic — correctness is unaffected.
        if let Some(l) = (0..fit.save.len())
            .filter(|&l| fit.save[l])
            .max_by_key(|&l| partial_arena_bytes(profile, l, nthreads))
        {
            let bytes = partial_arena_bytes(profile, l, nthreads);
            fit.save[l] = false;
            fit.events.push(DegradationEvent::MemoDropped { level: l, bytes });
            continue;
        }
        // Then privatization, largest mode first (the pool is sized by
        // the largest privatized mode, so that flip shrinks it most).
        if let Some(l) = (1..fit.privatized.len())
            .filter(|&l| fit.privatized[l])
            .max_by_key(|&l| profile.dims[l])
        {
            let before = priv_pool_bytes(profile, &fit.privatized, nthreads);
            fit.privatized[l] = false;
            let after = priv_pool_bytes(profile, &fit.privatized, nthreads);
            fit.events.push(DegradationEvent::PrivatizedToAtomic {
                level: l,
                bytes: before - after,
            });
            continue;
        }
        return Err(cost(&fit));
    }
    Ok(fit)
}

/// Modeled cost (elements moved) of each output-conflict strategy for
/// one non-root mode — see [`accum_costs`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccumCosts {
    /// Cost of per-thread privatized outputs + thread-order reduction.
    pub privatized: f64,
    /// Cost of a single shared output updated with atomic CAS adds.
    pub atomic: f64,
}

/// Prices the two conflict-resolution strategies for the mode at
/// `level` from the level profile.
///
/// Privatization pays for the replicated output regardless of how many
/// updates land in it: `T` zeroed copies, one `m_level·R` emit stream,
/// then a reduction that reads all `T` copies and writes the final one —
/// `(2T + 1)·n_level·R + m_level·R` in total. Atomics pay only for the
/// single output plus roughly two memory accesses per emitted element
/// (the CAS read-modify-write; the fused emitters stream each
/// contribution straight from registers into the sweep, so the former
/// third access — the scratch update-row write and read-back — is
/// gone), inflated by a contention factor that grows with the expected
/// collision rate `m/n` but saturates at `T`.
///
/// The crossover this captures: a *short* mode (small `n`) with many
/// updates amortizes the replicated copies and wants privatization; a
/// *long* sparse mode (`n ≫ m/T`) would mostly zero and reduce untouched
/// rows and wants atomics. The former bytes-only heuristic
/// (`T·n·R·8 ≤ cap`) modeled memory footprint, not time, and always
/// privatized small tensors even when `n ≫ m`.
pub fn accum_costs(profile: &LevelProfile, level: usize, nthreads: usize) -> AccumCosts {
    let t = nthreads.max(1) as f64;
    let n = profile.dims[level].max(1) as f64;
    let m = profile.fibers[level] as f64;
    let r = profile.rank as f64;
    let privatized = (2.0 * t + 1.0) * n * r + m * r;
    let contention = ((t - 1.0) / t) * (m / n).min(t);
    let atomic = n * r + 2.0 * m * r * (1.0 + contention);
    AccumCosts {
        privatized,
        atomic,
    }
}

/// `true` if the model prefers privatized accumulation for `level`.
/// Ties go to privatization (deterministic reduction order, no CAS
/// retries under contention).
pub fn prefer_privatized(profile: &LevelProfile, level: usize, nthreads: usize) -> bool {
    let c = accum_costs(profile, level, nthreads);
    c.privatized <= c.atomic
}

/// Relative error of a measured traffic total against this model's
/// prediction: `|measured − predicted| / max(predicted, 1)`. The floor
/// keeps a zero or degenerate prediction from dividing by zero. Shared
/// by the per-run audit ([`crate::TelemetryReport::model_audit`]) and
/// the daemon's continuous drift gauges so both report the same number.
pub fn drift_rel_err(measured: f64, predicted: f64) -> f64 {
    (measured - predicted).abs() / predicted.max(1.0)
}

/// Default cumulative relative error above which the continuous model
/// audit warns that §IV-C pricing (admission envelopes, `--engine
/// auto` bids) may be stale.
pub const DEFAULT_DRIFT_WARN_THRESHOLD: f64 = 0.5;

/// Models STeF2's trade (paper §VI-B): replace the base CSF's leaf-mode
/// MTTKRP (a full-tree traversal ending in a scatter) with a root-mode
/// pass over a second CSF rooted at that mode. Returns the predicted
/// traffic *saved* per CPD iteration (positive = STeF2 helps), ignoring
/// the one-time cost of building the second CSF.
///
/// `base` is the profile of the primary CSF; `second` the profile of the
/// CSF rooted at the base's leaf mode.
pub fn stef2_leaf_gain(base: &LevelProfile, second: &LevelProfile) -> f64 {
    let d = base.dims.len();
    debug_assert_eq!(second.dims.len(), d);
    // Leaf mode under the base CSF: full traversal + scatter writes.
    let base_cost = base.dm_no_mem_read() + base.dm_factor(d - 1, base.fibers[d - 1]);
    // Same mode as the root of the second CSF: full traversal of the
    // second tree + dense row writes.
    let second_cost = second.dm_no_mem_read() + (second.dims[0] * second.rank) as f64;
    base_cost - second_cost
}

/// The §IV-C pricing extended to the linearized (ALTO-style) layout.
///
/// A linearized MTTKRP for mode `u` is one flat pass over the sorted
/// non-zeros: per non-zero it reads the packed index (`idx_elems`
/// elements — 1 for a `u64` store, 2 for `u128`) and the value, plus one
/// row from each of the `d-1` input factors, and updates one output
/// row. Factor and output traffic get the same `DM_factor`-style cache
/// clamp as the CSF model: a matrix that fits in cache is charged at
/// most one cold load. There is no index *structure* beyond the packed
/// keys — that is the whole trade: ALTO pays `(idx_elems+1)·nnz` once
/// per mode where CSF pays `2·m_l` per level but amortizes factor reads
/// over fiber reuse. On irregular/hyper-sparse tensors where fiber
/// counts collapse to `m_l ≈ nnz` at every level, CSF's structure and
/// factor terms balloon past ALTO's flat cost, and
/// [`AltoProfile::total_traffic`] prices the crossover.
#[derive(Clone, Debug, PartialEq)]
pub struct AltoProfile {
    /// Mode lengths (natural mode order — linearization does not
    /// permute).
    pub dims: Vec<usize>,
    /// Number of stored non-zeros.
    pub nnz: usize,
    /// Decomposition rank `R`.
    pub rank: usize,
    /// Cache size in elements (`cache_bytes / 8`).
    pub cache_elems: usize,
    /// Index elements per non-zero (1 = `u64` store, 2 = `u128`).
    pub idx_elems: usize,
}

impl AltoProfile {
    /// `DM_factor` for the mode-`m` factor under `nnz` row accesses.
    fn dm_factor(&self, m: usize) -> f64 {
        let footprint = (self.dims[m] * self.rank) as f64;
        let demand = (self.nnz * self.rank) as f64;
        if footprint > self.cache_elems as f64 {
            demand
        } else {
            footprint.min(demand)
        }
    }

    /// Modeled `(reads, writes)` in elements of the mode-`u` linearized
    /// MTTKRP.
    pub fn mode_traffic(&self, u: usize) -> RawTraffic {
        let mut reads = self.nnz as f64 * (self.idx_elems as f64 + 1.0);
        for m in 0..self.dims.len() {
            if m != u {
                reads += self.dm_factor(m);
            }
        }
        RawTraffic {
            reads,
            writes: self.dm_factor(u),
        }
    }

    /// Total modeled traffic (elements) of one CPD iteration's worth of
    /// linearized MTTKRPs — the number engine selection compares against
    /// [`MemoPlan::predicted`].
    pub fn total_traffic(&self) -> f64 {
        (0..self.dims.len())
            .map(|u| {
                let t = self.mode_traffic(u);
                t.reads + t.writes
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(dims: &[usize], fibers: &[usize], rank: usize, cache_elems: usize) -> LevelProfile {
        LevelProfile {
            dims: dims.to_vec(),
            fibers: fibers.to_vec(),
            rank,
            cache_elems,
        }
    }

    #[test]
    fn dm_factor_cases() {
        let p = profile(&[100, 100, 100], &[10, 100, 1000], 8, 100 * 8);
        // Footprint 100*8 = 800 == cache: fits, min(800, x*8).
        assert_eq!(p.dm_factor(0, 10), 80.0);
        assert_eq!(p.dm_factor(0, 1000), 800.0);
        // Bigger matrix: footprint 800 > cache 640.
        let p2 = profile(&[100, 100, 100], &[10, 100, 1000], 8, 80 * 8);
        assert_eq!(p2.dm_factor(2, 1000), 8000.0);
    }

    #[test]
    fn saving_helps_when_fanout_is_high() {
        // Long leaf fibers: m_1 = 1000 but nnz = 100_000. Re-traversing
        // the leaves for mode 1 is expensive; saving P^(1) avoids it.
        let p = profile(
            &[100, 1000, 2000],
            &[100, 1_000, 100_000],
            32,
            1, // tiny cache: every access pays
        );
        let none = p.total_traffic(&[false, false, false]);
        let save1 = p.total_traffic(&[false, true, false]);
        assert!(save1 < none, "saving should win: save1={save1} none={none}");
        let (best, _) = best_memo_set(&p);
        assert_eq!(best, vec![false, true, false]);
    }

    #[test]
    fn saving_hurts_when_partials_are_as_big_as_the_tensor() {
        // freebase-like: almost every (i,j) pair unique -> m_1 ≈ nnz,
        // so P^(1) costs nnz·R traffic to write + read but only saves a
        // leaf re-traversal of ~3·nnz. With R = 32, saving loses.
        let p = profile(&[100_000, 100_000, 166], &[90_000, 99_000, 100_000], 32, 1);
        let none = p.total_traffic(&[false, false, false]);
        let save1 = p.total_traffic(&[false, true, false]);
        assert!(
            save1 > none,
            "saving should lose: save1={save1} none={none}"
        );
        let (best, _) = best_memo_set(&p);
        assert_eq!(best, vec![false, false, false]);
    }

    #[test]
    fn exhaustive_search_covers_all_subsets_4d() {
        let p = profile(&[50, 60, 70, 80], &[50, 500, 5_000, 50_000], 16, 1);
        // Brute-force over the 4 subsets must agree with best_memo_set.
        let subsets = [
            vec![false, false, false, false],
            vec![false, true, false, false],
            vec![false, false, true, false],
            vec![false, true, true, false],
        ];
        let brute = subsets
            .iter()
            .map(|s| (s.clone(), p.total_traffic(s)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let best = best_memo_set(&p);
        assert_eq!(best.0, brute.0);
        assert!((best.1 - brute.1).abs() < 1e-9);
    }

    #[test]
    fn choose_plan_prefers_lower_traffic_order() {
        let base = profile(&[10, 100, 1000], &[10, 50_000, 100_000], 32, 1);
        // Swapped order compresses much better at level d-2.
        let swapped = profile(&[10, 1000, 100], &[10, 5_000, 100_000], 32, 1);
        let plan = choose_plan(&base, &swapped);
        assert!(plan.swap_last_two);
        assert!(plan.predicted < plan.predicted_other_order);
        let plan2 = choose_plan(&swapped, &base);
        assert!(!plan2.swap_last_two);
    }

    #[test]
    fn matrix_case_has_no_memoizable_levels() {
        let p = profile(&[100, 200], &[100, 5_000], 8, 1);
        let (save, _) = best_memo_set(&p);
        assert_eq!(save, vec![false, false]);
    }

    #[test]
    fn op_count_model_saves_sqrt_many_levels() {
        let p = profile(
            &[10, 20, 30, 40, 50],
            &[10, 100, 1_000, 10_000, 100_000],
            16,
            1,
        );
        let save = op_count_memo_set(&p);
        let count = save.iter().filter(|&&s| s).count();
        // d-2 = 3 memoizable levels, ceil(sqrt(3)) = 2 kept.
        assert_eq!(count, 2);
        assert!(!save[0] && !save[4]);
    }

    #[test]
    fn traffic_by_level_sums_to_total() {
        for cache in [1usize, 100 * 8, 1 << 20] {
            let p = profile(&[100, 1000, 2000], &[100, 1_000, 100_000], 16, cache);
            for save in [
                vec![false, false, false],
                vec![false, true, false],
            ] {
                let per = p.traffic_by_level(&save);
                assert_eq!(per.len(), 3);
                let sum: f64 = per.iter().map(|&(r, w)| r + w).sum();
                let total = p.total_traffic(&save);
                assert!(
                    (sum - total).abs() < 1e-6,
                    "cache {cache}, save {save:?}: {sum} vs {total}"
                );
            }
        }
    }

    #[test]
    fn traffic_by_level_matches_raw_when_cache_disabled() {
        // With the clamp off, the per-level model breakdown and the raw
        // read/write split describe the same traversal.
        let p = profile(&[50, 60, 70, 80], &[50, 500, 5_000, 50_000], 8, 0);
        let save = vec![false, true, false, false];
        let per = p.traffic_by_level(&save);
        let raw = p.raw_traffic(&save);
        let reads: f64 = per.iter().map(|&(r, _)| r).sum();
        let writes: f64 = per.iter().map(|&(_, w)| w).sum();
        // Raw counts memo write-allocate only on the write side; the
        // §IV-C model charges it on both. Subtract it back out.
        let memo_rows = (500 * 8) as f64;
        assert!((reads - memo_rows - raw.reads).abs() < 1e-9);
        assert!((writes - raw.writes).abs() < 1e-9);
    }

    #[test]
    fn total_traffic_grows_with_rank() {
        let mk = |r| profile(&[100, 1000, 2000], &[100, 1_000, 100_000], r, 1);
        let t32 = mk(32).total_traffic(&[false, true, false]);
        let t64 = mk(64).total_traffic(&[false, true, false]);
        assert!(t64 > t32);
    }

    #[test]
    fn raw_traffic_hand_computed_3d() {
        // d=3, fibers [2, 10, 100], dims [4, 20, 50], R=2.
        let p = profile(&[4, 20, 50], &[2, 10, 100], 2, 1);
        // Save-none:
        //   structure_all = 2*(2+10+100) = 224; factors_all = (112)*2 = 224.
        //   mode0 reads 448; modes 1,2 read 448 each => reads = 1344.
        //   writes = n0*R + m1*R + m2*R = 8 + 20 + 200 = 228.
        let none = p.raw_traffic(&[false, false, false]);
        assert!((none.reads - 1344.0).abs() < 1e-9, "reads {}", none.reads);
        assert!((none.writes - 228.0).abs() < 1e-9, "writes {}", none.writes);
        // Save P^(1):
        //   mode0 reads 448; writes += m1*R = 20.
        //   mode1: structure 2*(2+10)=24 + krp m0*R=4 + partial m1*R=20 = 48.
        //   mode2: full 448.
        let saved = p.raw_traffic(&[false, true, false]);
        assert!(
            (saved.reads - (448.0 + 48.0 + 448.0)).abs() < 1e-9,
            "reads {}",
            saved.reads
        );
        assert!(
            (saved.writes - (228.0 + 20.0)).abs() < 1e-9,
            "writes {}",
            saved.writes
        );
    }

    #[test]
    fn raw_traffic_save_all_reads_grow_with_writes() {
        let p = profile(&[100, 1000, 2000], &[100, 1_000, 100_000], 32, 1);
        let none = p.raw_traffic(&[false, false, false]);
        let all = p.raw_traffic(&[false, true, false]);
        // Memoizing trades reads for writes on this high-fanout profile.
        assert!(all.reads < none.reads);
        assert!(all.writes > none.writes);
    }

    #[test]
    fn stef2_gain_positive_when_second_tree_compresses() {
        // Base: huge leaf level (expensive scatter). Second CSF rooted at
        // that mode compresses well -> gain should be positive.
        let base = profile(&[100, 1_000, 50_000], &[100, 10_000, 200_000], 32, 1);
        let second = profile(&[50_000, 100, 1_000], &[5_000, 50_000, 200_000], 32, 1);
        assert!(stef2_leaf_gain(&base, &second) > 0.0);
    }

    #[test]
    fn stef2_gain_negative_when_second_tree_is_no_better() {
        // Second CSF has the same fiber profile: its full traversal plus
        // dense writes of a huge root factor cannot beat the base.
        let base = profile(&[100, 1_000, 2_000], &[100, 5_000, 20_000], 8, 1 << 30);
        let second = profile(&[2_000, 100, 1_000], &[2_000, 20_000, 20_000], 8, 1 << 30);
        let gain = stef2_leaf_gain(&base, &second);
        assert!(gain < 0.0, "gain {gain} should be negative");
    }

    #[test]
    fn accum_model_prefers_privatized_for_short_hot_modes() {
        // n = 50 rows, m = 100k updates, 8 threads: replicating 50 rows
        // is nothing next to 100k atomic CAS adds.
        let p = profile(&[1000, 50, 2000], &[1000, 100_000, 500_000], 16, 1);
        assert!(prefer_privatized(&p, 1, 8));
        let c = accum_costs(&p, 1, 8);
        assert!(c.privatized < c.atomic);
    }

    #[test]
    fn accum_model_prefers_atomics_for_long_sparse_modes() {
        // n = 2M rows but only 10k updates: zeroing and reducing 8 × 2M
        // rows dwarfs 10k mostly-uncontended atomic adds.
        let p = profile(&[100, 2_000_000, 50], &[100, 10_000, 500_000], 16, 1);
        assert!(!prefer_privatized(&p, 1, 8));
    }

    #[test]
    fn accum_model_single_thread_prefers_privatized_when_dense() {
        // T = 1: privatization degenerates to a plain local output; it
        // wins whenever updates at least cover the rows.
        let p = profile(&[100, 500, 50], &[100, 5_000, 20_000], 8, 1);
        assert!(prefer_privatized(&p, 1, 1));
        // ... and still loses when the mode is nearly all untouched rows.
        let p2 = profile(&[100, 1_000_000, 50], &[100, 1_000, 20_000], 8, 1);
        assert!(!prefer_privatized(&p2, 1, 1));
    }

    #[test]
    fn accum_contention_penalizes_atomics_as_threads_grow() {
        let p = profile(&[100, 200, 50], &[100, 50_000, 200_000], 16, 1);
        let c1 = accum_costs(&p, 1, 1);
        let c16 = accum_costs(&p, 1, 16);
        assert!(c1.atomic < c16.atomic);
        // Privatized cost also grows with T (more copies), but linearly
        // in n rather than m.
        assert!(c16.privatized > c1.privatized);
    }

    #[test]
    fn budget_fit_unlimited_is_identity() {
        let p = profile(&[10, 20, 30], &[10, 200, 3_000], 4, 1);
        let fit = fit_memory_budget(
            &p,
            vec![false, true, false],
            vec![false, true, true],
            4,
            1024,
            0,
        )
        .unwrap();
        assert!(fit.events.is_empty());
        assert_eq!(fit.save, vec![false, true, false]);
    }

    #[test]
    fn budget_fit_drops_largest_memo_first() {
        let p = profile(&[10, 20, 30, 40], &[10, 100, 5_000, 50_000], 4, 1);
        let save = vec![false, true, true, false];
        let small = partial_arena_bytes(&p, 1, 2);
        let large = partial_arena_bytes(&p, 2, 2);
        assert!(large > small);
        // Budget admits the small partial but not both.
        let budget = small + 64;
        let fit = fit_memory_budget(&p, save, vec![false; 4], 2, 0, budget).unwrap();
        assert_eq!(fit.save, vec![false, true, false, false]);
        assert_eq!(
            fit.events,
            vec![DegradationEvent::MemoDropped {
                level: 2,
                bytes: large
            }]
        );
    }

    #[test]
    fn budget_fit_flips_privatized_after_memo() {
        let p = profile(&[10, 2_000, 30], &[10, 200, 3_000], 8, 1);
        let save = vec![false, true, false];
        let privatized = vec![false, true, true];
        // Tiny budget: memo goes, then the big privatized mode, then the
        // small one; floor is fixed_bytes = 100.
        let fit = fit_memory_budget(&p, save, privatized, 4, 100, 128).unwrap();
        assert!(!fit.save[1]);
        assert!(!fit.privatized[1] && !fit.privatized[2]);
        assert_eq!(fit.events.len(), 3);
        assert!(matches!(
            fit.events[1],
            DegradationEvent::PrivatizedToAtomic { level: 1, .. }
        ));
    }

    #[test]
    fn budget_fit_rejects_impossible_floor() {
        let p = profile(&[10, 20, 30], &[10, 200, 3_000], 4, 1);
        let err = fit_memory_budget(&p, vec![false; 3], vec![false; 3], 4, 4096, 100).unwrap_err();
        assert_eq!(err, 4096);
    }

    #[test]
    fn partial_and_factor_bytes() {
        let p = profile(&[10, 20, 30], &[10, 200, 3_000], 4, 1);
        assert_eq!(p.partial_bytes(&[false, true, false]), 200 * 4 * 8);
        assert_eq!(p.factor_bytes(), (10 + 20 + 30) * 4 * 8);
    }

    #[test]
    fn alto_mode_traffic_hand_computed() {
        // d=3, nnz=100, R=2, narrow index, cache off (cache_elems=0:
        // every footprint exceeds it, so factors charge nnz·R).
        let p = AltoProfile {
            dims: vec![4, 20, 50],
            nnz: 100,
            rank: 2,
            cache_elems: 0,
            idx_elems: 1,
        };
        let t = p.mode_traffic(1);
        // reads: 100·(1+1) index+value + 2 factors · 100·2 = 600.
        assert!((t.reads - 600.0).abs() < 1e-9, "reads {}", t.reads);
        assert!((t.writes - 200.0).abs() < 1e-9, "writes {}", t.writes);
        let total = p.total_traffic();
        assert!((total - 3.0 * 800.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn alto_cache_clamp_caps_small_factors() {
        // Factor 0 (4·2 = 8 elements) fits a cache of 16: charged a
        // single cold load, not nnz·R.
        let p = AltoProfile {
            dims: vec![4, 20, 50],
            nnz: 100,
            rank: 2,
            cache_elems: 16,
            idx_elems: 1,
        };
        let t = p.mode_traffic(1);
        // reads: 200 (index+value) + 8 (mode 0 clamped) + 200 (mode 2).
        assert!((t.reads - 408.0).abs() < 1e-9, "reads {}", t.reads);
    }

    #[test]
    fn alto_beats_csf_when_fibers_collapse() {
        // Hyper-sparse: every level's fiber count ≈ nnz, so CSF pays
        // full structure + factor traffic per level with no fiber
        // reuse, while ALTO pays the flat 2·nnz index+value stream.
        let nnz = 100_000;
        let dims = vec![1 << 20, 1 << 20, 1 << 20];
        let csf = profile(&dims, &[nnz - 50, nnz - 10, nnz], 16, 1 << 16);
        let (_, csf_traffic) = best_memo_set(&csf);
        let alto = AltoProfile {
            dims,
            nnz,
            rank: 16,
            cache_elems: 1 << 16,
            idx_elems: 1,
        };
        assert!(
            alto.total_traffic() < csf_traffic,
            "alto {} vs csf {csf_traffic}",
            alto.total_traffic()
        );
    }

    #[test]
    fn csf_beats_alto_on_dense_regular_tensors() {
        // Strong fiber compression: m_0 ≪ m_1 ≪ nnz. CSF amortizes
        // factor reads over fibers; ALTO re-reads per non-zero.
        let nnz = 1_000_000;
        let dims = vec![100, 1000, 2000];
        let csf = profile(&dims, &[100, 20_000, nnz], 16, 1 << 16);
        let (_, csf_traffic) = best_memo_set(&csf);
        let alto = AltoProfile {
            dims,
            nnz,
            rank: 16,
            cache_elems: 1 << 16,
            idx_elems: 1,
        };
        assert!(
            alto.total_traffic() > csf_traffic,
            "alto {} vs csf {csf_traffic}",
            alto.total_traffic()
        );
    }
}
