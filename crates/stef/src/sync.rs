//! Shared mutable row buffers for the parallel kernels.
//!
//! The STeF kernels intentionally share one output/partial buffer between
//! worker tasks: the nnz-balanced schedule guarantees that *rows* are
//! owned by exactly one logical thread, except for replicated boundary
//! rows (shifted by thread id) and the root-mode output rows at thread
//! boundaries (updated atomically). Rust's `&mut` aliasing rules cannot
//! express "disjoint dynamic row ownership", so this module provides a
//! minimal, heavily documented escape hatch:
//!
//! * [`SharedRows`] wraps a `&mut [f64]` and hands out per-row `&mut`
//!   slices through a shared reference. Callers must uphold the
//!   row-disjointness invariant; debug builds cannot check it (ownership
//!   is a property of the schedule), so every call site documents why its
//!   rows are disjoint.
//! * [`atomic_add_row`] performs element-wise `+=` with relaxed
//!   compare-exchange loops on `f64` bits — the paper's "atomic updates
//!   at thread boundaries" (Algorithm 4, line 11). Relaxed ordering is
//!   sufficient because the only cross-thread communication is the value
//!   itself and the parallel region ends with a full join barrier.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Acquires a mutex, recovering the guard if a previous holder panicked.
///
/// Every lock in the runtime protects state that stays consistent across
/// a panic (empty critical sections used as wakeup fences, counters,
/// join-handle slots), so poisoning carries no information here — and
/// propagating it would let one worker panic take down every later
/// dispatch. The hardened pool therefore never `unwrap()`s a lock.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// `Condvar::wait` with the same poison-recovery policy as
/// [`lock_unpoisoned`].
pub fn wait_unpoisoned<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(|e| e.into_inner())
}

/// `Condvar::wait_timeout` with the same poison-recovery policy as
/// [`lock_unpoisoned`]. The timeout-vs-notify distinction is dropped:
/// callers that park on a heartbeat re-check their predicate either way.
pub fn wait_timeout_unpoisoned<'a, T>(
    cv: &Condvar,
    g: MutexGuard<'a, T>,
    timeout: std::time::Duration,
) -> MutexGuard<'a, T> {
    match cv.wait_timeout(g, timeout) {
        Ok((g, _)) => g,
        Err(e) => e.into_inner().0,
    }
}

/// A row-major buffer whose rows may be written concurrently by multiple
/// tasks, provided each plain-access row has exactly one writer.
pub struct SharedRows<'a> {
    data: &'a [UnsafeCell<f64>],
    row_len: usize,
}

// SAFETY: `SharedRows` only adds row-granular access on top of a buffer
// the caller owns for the duration of the parallel region. All plain
// (non-atomic) accesses go through `row_mut`, whose contract requires the
// caller to guarantee single-writer rows; atomic accesses use `AtomicU64`
// views. The join at the end of the parallel region provides the
// happens-before edge that makes subsequent sequential reads race-free.
unsafe impl Sync for SharedRows<'_> {}
unsafe impl Send for SharedRows<'_> {}

impl<'a> SharedRows<'a> {
    /// Wraps a mutable buffer of `rows × row_len` elements.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `row_len`.
    pub fn new(buf: &'a mut [f64], row_len: usize) -> Self {
        assert!(row_len > 0);
        assert_eq!(buf.len() % row_len, 0, "buffer must be whole rows");
        // SAFETY: `UnsafeCell<f64>` has the same layout as `f64`, and we
        // hold the unique `&mut` to the buffer, so reinterpreting it as a
        // shared slice of cells is sound.
        let data = unsafe {
            std::slice::from_raw_parts(buf.as_ptr() as *const UnsafeCell<f64>, buf.len())
        };
        SharedRows { data, row_len }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.data.len() / self.row_len
    }

    /// Row length.
    #[inline]
    pub fn row_len(&self) -> usize {
        self.row_len
    }

    /// Returns a mutable view of row `r`.
    ///
    /// # Safety
    /// The caller must guarantee that no other task accesses row `r`
    /// (mutably or otherwise, including atomically) while the returned
    /// slice is alive. In the kernels this follows from the schedule's
    /// row-ownership argument (see `schedule.rs`).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn row_mut(&self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows());
        let base = r * self.row_len;
        // SAFETY: in-bounds by the assert; exclusivity is the caller's
        // contract.
        unsafe { std::slice::from_raw_parts_mut(self.data[base].get(), self.row_len) }
    }

    /// Returns a read-only view of row `r`.
    ///
    /// # Safety
    /// No task may be writing row `r` concurrently.
    #[inline]
    pub unsafe fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows());
        let base = r * self.row_len;
        // SAFETY: see above.
        unsafe { std::slice::from_raw_parts(self.data[base].get(), self.row_len) }
    }

    /// Atomically adds `vals` element-wise into row `r`. Safe to call
    /// concurrently with other `atomic_add_row` calls on any row, but
    /// must not overlap a plain `row_mut` access to the same row.
    pub fn atomic_add_row(&self, r: usize, vals: &[f64]) {
        debug_assert!(r < self.rows());
        debug_assert_eq!(vals.len(), self.row_len);
        let base = r * self.row_len;
        for (k, &v) in vals.iter().enumerate() {
            self.cas_add(base + k, v);
        }
    }

    /// Atomically adds `s · x` element-wise into row `r` — the fused
    /// form of `scale_row_into` + [`atomic_add_row`], skipping the
    /// scratch-row write and read-back entirely. `s·xₖ` rounds exactly
    /// like the unfused sequence (one multiply either way, on every
    /// SIMD path), so results are bit-identical to it.
    pub fn atomic_add_scaled_row(&self, r: usize, s: f64, x: &[f64]) {
        debug_assert!(r < self.rows());
        debug_assert_eq!(x.len(), self.row_len);
        let base = r * self.row_len;
        for (k, &xv) in x.iter().enumerate() {
            self.cas_add(base + k, s * xv);
        }
    }

    /// Atomically adds `a ⊙ b` element-wise into row `r` — the fused
    /// form of `krp_row` + [`atomic_add_row`], same rounding argument
    /// as [`atomic_add_scaled_row`].
    pub fn atomic_add_product_row(&self, r: usize, a: &[f64], b: &[f64]) {
        debug_assert!(r < self.rows());
        debug_assert_eq!(a.len(), self.row_len);
        debug_assert_eq!(b.len(), self.row_len);
        let base = r * self.row_len;
        for (k, (&av, &bv)) in a.iter().zip(b).enumerate() {
            self.cas_add(base + k, av * bv);
        }
    }

    /// Hints that row `r` is about to be CAS-updated, pulling its cache
    /// lines toward L1 so the atomic sweep's read-modify-write does not
    /// stall on a cold load. Purely advisory.
    #[inline]
    pub fn prefetch_row(&self, r: usize) {
        debug_assert!(r < self.rows());
        let base = r * self.row_len;
        let mut k = 0;
        while k < self.row_len {
            linalg::simd::prefetch_read(self.data[base + k].get());
            k += 8; // one 64-byte line of f64s per hint
        }
    }

    /// One relaxed CAS add, skipping exact zeros (adding 0.0 is an
    /// identity for every finite accumulator value, and zero-valued
    /// lanes are common after the Hadamard chain hits a pruned entry).
    #[inline]
    fn cas_add(&self, idx: usize, v: f64) {
        if v == 0.0 {
            return;
        }
        // SAFETY: AtomicU64 has the same size/alignment as f64 and the
        // cell is never accessed non-atomically during this phase
        // (caller contract).
        let cell = unsafe { &*(self.data[idx].get() as *const AtomicU64) };
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = f64::from_bits(cur) + v;
            match cell.compare_exchange_weak(cur, new.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// A flat buffer whose disjoint index ranges may be written concurrently
/// by multiple tasks — the generic sibling of [`SharedRows`] used for the
/// workspace arenas (`f64` scratch, `usize` traversal stacks) and for the
/// chunked privatized-output reduction, where the natural unit is an
/// arbitrary element range rather than a fixed-length row.
pub struct SharedSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: same argument as `SharedRows` — the caller owns the buffer for
// the duration of the parallel region, all access goes through the unsafe
// range accessors whose contract requires disjointness, and the join at
// the end of the region provides the happens-before edge.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a mutable buffer.
    pub fn new(buf: &'a mut [T]) -> Self {
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`, and we hold
        // the unique `&mut` to the buffer.
        let data = unsafe {
            std::slice::from_raw_parts(buf.as_ptr() as *const UnsafeCell<T>, buf.len())
        };
        SharedSlice { data }
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a mutable view of elements `lo..hi`.
    ///
    /// # Safety
    /// The caller must guarantee that no other task accesses any element
    /// of `lo..hi` (mutably or otherwise) while the returned slice is
    /// alive.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn range_mut(&self, lo: usize, hi: usize) -> &mut [T] {
        debug_assert!(lo <= hi && hi <= self.data.len());
        // SAFETY: in-bounds by the assert; exclusivity is the caller's
        // contract.
        unsafe { std::slice::from_raw_parts_mut(self.data[lo].get(), hi - lo) }
    }

    /// Returns a read-only view of elements `lo..hi`.
    ///
    /// # Safety
    /// No task may be writing any element of `lo..hi` concurrently.
    #[inline]
    pub unsafe fn range(&self, lo: usize, hi: usize) -> &[T] {
        debug_assert!(lo <= hi && hi <= self.data.len());
        // SAFETY: see above.
        unsafe { std::slice::from_raw_parts(self.data[lo].get(), hi - lo) }
    }
}

/// Runs `f(th)` for every logical thread `0..nthreads` on the
/// process-global persistent worker pool ([`crate::runtime::global`]),
/// allocation-free in the steady state.
///
/// This is the kernels' replacement for `(0..nthreads).into_par_iter()`:
/// the rayon shim materializes the range into a `Vec` on every call,
/// which would violate the workspace's no-steady-state-allocation
/// guarantee. Callers with an engine-owned [`crate::runtime::Executor`]
/// (which honors `StefOptions::num_threads` instead of the global
/// hardware probe) should fan out on that executor directly; this free
/// function exists for schedule-less call sites (validation scans,
/// baselines, tests).
pub fn fanout<F: Fn(usize) + Sync>(nthreads: usize, f: F) {
    crate::runtime::global().fanout(nthreads, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn disjoint_rows_written_in_parallel() {
        let mut buf = vec![0.0; 64 * 8];
        {
            let shared = SharedRows::new(&mut buf, 8);
            (0..64usize).into_par_iter().for_each(|r| {
                // SAFETY: each task touches exactly its own row.
                let row = unsafe { shared.row_mut(r) };
                for (k, x) in row.iter_mut().enumerate() {
                    *x = (r * 8 + k) as f64;
                }
            });
        }
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, i as f64);
        }
    }

    #[test]
    fn atomic_add_accumulates_from_many_tasks() {
        let mut buf = vec![0.0; 4];
        {
            let shared = SharedRows::new(&mut buf, 4);
            (0..1000usize).into_par_iter().for_each(|_| {
                shared.atomic_add_row(0, &[1.0, 2.0, 0.0, -1.0]);
            });
        }
        assert_eq!(buf, vec![1000.0, 2000.0, 0.0, -1000.0]);
    }

    #[test]
    fn atomic_add_skips_zero_contributions() {
        let mut buf = vec![5.0; 2];
        {
            let shared = SharedRows::new(&mut buf, 2);
            shared.atomic_add_row(0, &[0.0, 0.0]);
        }
        assert_eq!(buf, vec![5.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn rejects_ragged_buffer() {
        let mut buf = vec![0.0; 7];
        let _ = SharedRows::new(&mut buf, 2);
    }

    #[test]
    fn fanout_covers_every_logical_thread_once() {
        use std::sync::atomic::AtomicUsize;
        for nthreads in [0usize, 1, 2, 3, 7, 16, 33] {
            let hits: Vec<AtomicUsize> = (0..nthreads).map(|_| AtomicUsize::new(0)).collect();
            fanout(nthreads, |th| {
                hits[th].fetch_add(1, Ordering::Relaxed);
            });
            for (th, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "thread {th} of {nthreads}");
            }
        }
    }

    #[test]
    fn shared_slice_disjoint_ranges() {
        let mut buf = vec![0usize; 40];
        {
            let shared = SharedSlice::new(&mut buf);
            fanout(4, |th| {
                // SAFETY: each logical thread owns a disjoint 10-element range.
                let part = unsafe { shared.range_mut(th * 10, (th + 1) * 10) };
                for (i, x) in part.iter_mut().enumerate() {
                    *x = th * 100 + i;
                }
            });
            // SAFETY: writers joined before this read.
            assert_eq!(unsafe { shared.range(10, 13) }, &[100, 101, 102]);
        }
        assert_eq!(buf[35], 305);
    }

    #[test]
    fn lock_unpoisoned_recovers_a_poisoned_mutex() {
        use std::sync::{Arc, Mutex};
        let m = Arc::new(Mutex::new(41));
        let m2 = Arc::clone(&m);
        // Poison it: panic while holding the guard.
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.lock().is_err(), "mutex must actually be poisoned");
        // The recovery path still hands out a usable guard...
        *lock_unpoisoned(&m) += 1;
        assert_eq!(*lock_unpoisoned(&m), 42);
        // ...and keeps working on an unpoisoned mutex too.
        let clean = Mutex::new(7);
        assert_eq!(*lock_unpoisoned(&clean), 7);
    }

    #[test]
    fn wait_unpoisoned_wakes_through_a_poisoned_pair() {
        use std::sync::{Arc, Condvar, Mutex};
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        // Poison the mutex first, so the waiter's reacquire-after-wake
        // goes down the recovery path.
        let p3 = Arc::clone(&pair);
        let _ = std::thread::spawn(move || {
            let _g = p3.0.lock().unwrap();
            panic!("poison the condvar's mutex");
        })
        .join();
        let notifier = std::thread::spawn(move || {
            *lock_unpoisoned(&p2.0) = true;
            p2.1.notify_all();
        });
        let mut ready = lock_unpoisoned(&pair.0);
        while !*ready {
            ready = wait_unpoisoned(&pair.1, ready);
        }
        drop(ready);
        notifier.join().unwrap();
    }

    #[test]
    fn row_read_back() {
        let mut buf = vec![1.0, 2.0, 3.0, 4.0];
        let shared = SharedRows::new(&mut buf, 2);
        // SAFETY: no concurrent writers in this test.
        unsafe {
            assert_eq!(shared.row(1), &[3.0, 4.0]);
            shared.row_mut(0)[1] = 9.0;
            assert_eq!(shared.row(0), &[1.0, 9.0]);
        }
    }
}
