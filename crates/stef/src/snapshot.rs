//! Atomically-swapped factor snapshots: the serving read path.
//!
//! A decomposition service answers two very different kinds of request:
//! *writes* (submit a decomposition job, wait for it to converge) and
//! *reads* (look up a fitted factor row, score a batch of candidates).
//! Reads outnumber writes by orders of magnitude and must keep working
//! while a refit of the same model is in flight — or after that refit
//! *fails*. This module provides the piece that makes that safe:
//!
//! * [`FactorSnapshot`] — an immutable, internally-checksummed view of
//!   one fitted model (factors, `λ`, fit, generation; see
//!   [`FactorSnapshot::recompute_checksum`]). Once built it is never
//!   mutated; "updating" a model means building a new snapshot and
//!   swapping the `Arc`.
//! * [`SnapshotStore`] — a name → snapshot map whose swap is a single
//!   pointer store under a short critical section. Readers clone the
//!   `Arc` and then work entirely lock-free on data that can never be
//!   torn: a reader holds either the old snapshot or the new one, never
//!   a mix (the `Arc` indirection is the atomicity boundary — see
//!   DESIGN.md §11 for the memory-ordering argument).
//! * staleness — when a refit fails or is shed at admission, the store
//!   re-publishes the *last good* snapshot with a staleness marker
//!   instead of dropping it, so degraded serving is explicit in every
//!   response rather than silent.
//!
//! Query helpers ([`FactorSnapshot::factor_row`],
//! [`FactorSnapshot::top_k`]) implement the recommendation-style reads
//! the service exposes: factor-row lookup and batched top-k scoring of
//! one mode's rows against a row of another mode.

use crate::checkpoint::fnv64;
use crate::cpd::CpdResult;
use crate::error::StefError;
use crate::sync::lock_unpoisoned;
use linalg::Mat;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An immutable view of one fitted model. Built once per (re)fit and
/// shared by `Arc`; all fields describe the same converged state, and
/// [`FactorSnapshot::content_fnv`] lets a reader (or a test) prove it
/// observed a consistent snapshot rather than a torn mix of two.
#[derive(Debug)]
pub struct FactorSnapshot {
    /// Model name the snapshot is published under.
    pub model: String,
    /// Monotone per-model generation (1 = first fit). A re-publish with
    /// a staleness marker keeps the generation of the data it serves.
    pub generation: u64,
    /// Supervisor job id of the fit that produced the factors.
    pub job_id: usize,
    /// Decomposition rank.
    pub rank: usize,
    /// Tensor dimensions (factor `u` has `dims[u]` rows).
    pub dims: Vec<usize>,
    /// Factor matrices, columns normalized (shared with any stale
    /// re-publication of the same data, so marking a model stale costs
    /// one small allocation, not a factor copy).
    pub factors: Arc<Vec<Mat>>,
    /// Component weights `λ`.
    pub lambda: Arc<Vec<f64>>,
    /// Final fit of the producing run.
    pub final_fit: f64,
    /// ALS iterations the producing run executed.
    pub iterations: usize,
    /// `true` when a *later* refit of this model failed or was shed:
    /// the data is the last good fit, served degraded.
    pub stale: bool,
    /// Why the model is stale, when it is.
    pub stale_reason: Option<String>,
    /// FNV-64 over the factor and `λ` bit patterns, computed at build
    /// time. Recomputing it on a served snapshot and comparing proves
    /// the reader did not observe a torn swap.
    pub checksum: u64,
}

/// FNV-64 over the exact f64 bit patterns of the factors and weights.
fn content_checksum(factors: &[Mat], lambda: &[f64]) -> u64 {
    let mut bytes = Vec::with_capacity(lambda.len() * 8);
    for f in factors {
        for &v in f.as_slice() {
            bytes.extend_from_slice(&v.to_bits().to_be_bytes());
        }
    }
    for &v in lambda {
        bytes.extend_from_slice(&v.to_bits().to_be_bytes());
    }
    fnv64(&bytes)
}

impl FactorSnapshot {
    /// Builds a snapshot from a converged run's result. The factors and
    /// weights are cloned out of the result (one copy per refit — the
    /// result may still be handed to `take_result` callers).
    pub fn from_result(
        model: impl Into<String>,
        generation: u64,
        job_id: usize,
        result: &CpdResult,
    ) -> FactorSnapshot {
        let factors: Vec<Mat> = result.factors.clone();
        let lambda = result.lambda.clone();
        let checksum = content_checksum(&factors, &lambda);
        FactorSnapshot {
            model: model.into(),
            generation,
            job_id,
            rank: factors.first().map_or(0, Mat::cols),
            dims: factors.iter().map(Mat::rows).collect(),
            factors: Arc::new(factors),
            lambda: Arc::new(lambda),
            final_fit: result.final_fit(),
            iterations: result.iterations,
            stale: false,
            stale_reason: None,
            checksum,
        }
    }

    /// Recomputes the content checksum from the data this snapshot
    /// actually holds. Equal to [`FactorSnapshot::checksum`] on every
    /// snapshot a reader can legitimately observe; a mismatch would
    /// mean a torn swap, which the `Arc` design makes impossible — the
    /// serving layer still exposes the comparison so the claim is
    /// continuously *tested* rather than merely asserted.
    pub fn recompute_checksum(&self) -> u64 {
        content_checksum(&self.factors, &self.lambda)
    }

    /// One factor row: the embedding of entity `row` in mode `mode`.
    pub fn factor_row(&self, mode: usize, row: usize) -> Result<&[f64], StefError> {
        let f = self.factors.get(mode).ok_or_else(|| {
            StefError::Input(format!(
                "mode {mode} out of range (model '{}' has {} modes)",
                self.model,
                self.factors.len()
            ))
        })?;
        if row >= f.rows() {
            return Err(StefError::Input(format!(
                "row {row} out of range (mode {mode} has {} rows)",
                f.rows()
            )));
        }
        Ok(f.row(row))
    }

    /// Batched top-k scoring: for each `row` of mode `mode`, ranks every
    /// row `j` of `target_mode` by `Σ_r λ_r · A⁽ᵐ⁾[row,r] · A⁽ᵗ⁾[j,r]`
    /// and returns the `k` best as `(j, score)`, best first. This is the
    /// recommendation query: "given user `row`, which items score
    /// highest under the fitted model".
    pub fn top_k(
        &self,
        mode: usize,
        rows: &[usize],
        target_mode: usize,
        k: usize,
    ) -> Result<Vec<Vec<(usize, f64)>>, StefError> {
        if target_mode == mode {
            return Err(StefError::Input(
                "target mode must differ from the query mode".into(),
            ));
        }
        let target = self.factors.get(target_mode).ok_or_else(|| {
            StefError::Input(format!("target mode {target_mode} out of range"))
        })?;
        let k = k.min(target.rows());
        let mut out = Vec::with_capacity(rows.len());
        for &row in rows {
            let q = self.factor_row(mode, row)?;
            // λ-weighted query vector, hoisted out of the scan.
            let weighted: Vec<f64> = q
                .iter()
                .zip(self.lambda.iter())
                .map(|(a, l)| a * l)
                .collect();
            let mut best: Vec<(usize, f64)> = Vec::with_capacity(k + 1);
            for (j, trow) in target.rows_iter() {
                let score: f64 = weighted.iter().zip(trow).map(|(w, t)| w * t).sum();
                if best.len() < k {
                    best.push((j, score));
                    if best.len() == k {
                        best.sort_by(|a, b| b.1.total_cmp(&a.1));
                    }
                } else if let Some(last) = best.last() {
                    if score > last.1 {
                        best.pop();
                        let pos = best
                            .partition_point(|&(_, s)| s >= score);
                        best.insert(pos, (j, score));
                    }
                }
            }
            if best.len() < k {
                best.sort_by(|a, b| b.1.total_cmp(&a.1));
            }
            out.push(best);
        }
        Ok(out)
    }
}

/// Per-model publication slot. The generation counter lives outside the
/// snapshot so staleness re-publication can keep the served data's
/// generation while still proving progress to pollers.
struct ModelCell {
    current: Option<Arc<FactorSnapshot>>,
    next_generation: u64,
}

/// Name → snapshot map with atomic swap semantics. All methods take
/// `&self`; the store is shared freely across the serving threads.
///
/// Swap protocol: writers build the complete new [`FactorSnapshot`]
/// *outside* any lock, then swap the `Arc` in a critical section that
/// contains exactly one pointer store. Readers clone the `Arc` inside
/// the same mutex (an uncontended lock plus a refcount increment) and
/// then never touch shared state again — so a refit can never block a
/// query on anything longer than the pointer swap itself, and a reader
/// can never observe half of an update.
pub struct SnapshotStore {
    models: Mutex<HashMap<String, ModelCell>>,
    /// Published snapshots across all models (telemetry).
    installs: AtomicU64,
}

impl Default for SnapshotStore {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotStore {
    /// An empty store.
    pub fn new() -> SnapshotStore {
        SnapshotStore {
            models: Mutex::new(HashMap::new()),
            installs: AtomicU64::new(0),
        }
    }

    /// Publishes a fresh fit for `model`, allocating the next
    /// generation. Returns the generation the snapshot was published
    /// at. Any previous snapshot (stale or not) is replaced; readers
    /// holding it keep a consistent view until they drop their `Arc`.
    pub fn install(&self, model: &str, job_id: usize, result: &CpdResult) -> u64 {
        // Build outside the lock: the snapshot copy + checksum is the
        // expensive part, and it must not serialize against readers.
        let mut snapshot = FactorSnapshot::from_result(model, 0, job_id, result);
        let mut models = lock_unpoisoned(&self.models);
        let cell = models.entry(model.to_string()).or_insert(ModelCell {
            current: None,
            next_generation: 1,
        });
        let generation = cell.next_generation;
        cell.next_generation += 1;
        snapshot.generation = generation;
        cell.current = Some(Arc::new(snapshot));
        self.installs.fetch_add(1, Ordering::Relaxed);
        generation
    }

    /// Marks `model` stale after a failed or shed refit: the last good
    /// snapshot is re-published with the staleness marker (sharing the
    /// factor data — no copy), so queries keep answering, degraded and
    /// labelled. Returns `false` when the model has no snapshot to
    /// keep serving (nothing was ever fitted).
    pub fn mark_stale(&self, model: &str, reason: &str) -> bool {
        let mut models = lock_unpoisoned(&self.models);
        let Some(cell) = models.get_mut(model) else {
            return false;
        };
        let Some(old) = cell.current.as_ref() else {
            return false;
        };
        let stale = FactorSnapshot {
            model: old.model.clone(),
            generation: old.generation,
            job_id: old.job_id,
            rank: old.rank,
            dims: old.dims.clone(),
            factors: Arc::clone(&old.factors),
            lambda: Arc::clone(&old.lambda),
            final_fit: old.final_fit,
            iterations: old.iterations,
            stale: true,
            stale_reason: Some(reason.to_string()),
            checksum: old.checksum,
        };
        cell.current = Some(Arc::new(stale));
        true
    }

    /// The current snapshot for `model`, if any. The returned `Arc` is
    /// a stable view: later installs do not affect it.
    pub fn get(&self, model: &str) -> Option<Arc<FactorSnapshot>> {
        lock_unpoisoned(&self.models)
            .get(model)
            .and_then(|c| c.current.clone())
    }

    /// Names of every model with a published snapshot.
    pub fn models(&self) -> Vec<String> {
        let mut names: Vec<String> = lock_unpoisoned(&self.models)
            .iter()
            .filter(|(_, c)| c.current.is_some())
            .map(|(name, _)| name.clone())
            .collect();
        names.sort();
        names
    }

    /// Snapshots published since the store was created.
    pub fn installs(&self) -> u64 {
        self.installs.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpd::{cpd_als, CpdOptions};
    use crate::engine::ReferenceEngine;
    use workloads::power_law_tensor;

    fn fitted(seed: u64) -> CpdResult {
        let t = power_law_tensor(&[10, 8, 6], 200, &[0.5, 0.5, 0.5], seed);
        let mut engine = ReferenceEngine::new(t);
        let mut opts = CpdOptions::new(3);
        opts.max_iters = 4;
        opts.tol = 0.0;
        opts.seed = seed;
        cpd_als(&mut engine, &opts).unwrap()
    }

    #[test]
    fn install_get_and_generation_advance() {
        let store = SnapshotStore::new();
        assert!(store.get("m").is_none());
        let r1 = fitted(1);
        assert_eq!(store.install("m", 0, &r1), 1);
        let s1 = store.get("m").unwrap();
        assert_eq!(s1.generation, 1);
        assert_eq!(s1.dims, vec![10, 8, 6]);
        assert_eq!(s1.rank, 3);
        assert!(!s1.stale);
        assert_eq!(s1.checksum, s1.recompute_checksum());

        let r2 = fitted(2);
        assert_eq!(store.install("m", 1, &r2), 2);
        let s2 = store.get("m").unwrap();
        assert_eq!(s2.generation, 2);
        // The old Arc is still fully consistent.
        assert_eq!(s1.generation, 1);
        assert_eq!(s1.checksum, s1.recompute_checksum());
        assert_eq!(store.models(), vec!["m".to_string()]);
        assert_eq!(store.installs(), 2);
    }

    #[test]
    fn stale_republication_shares_data_and_keeps_generation() {
        let store = SnapshotStore::new();
        assert!(!store.mark_stale("m", "nothing fitted"), "no snapshot yet");
        let r = fitted(3);
        store.install("m", 0, &r);
        assert!(store.mark_stale("m", "refit shed: overloaded"));
        let s = store.get("m").unwrap();
        assert!(s.stale);
        assert_eq!(s.generation, 1, "stale serves the old data's generation");
        assert_eq!(s.stale_reason.as_deref(), Some("refit shed: overloaded"));
        assert_eq!(s.checksum, s.recompute_checksum());
        // A successful refit clears staleness and advances.
        let r2 = fitted(4);
        assert_eq!(store.install("m", 1, &r2), 2);
        assert!(!store.get("m").unwrap().stale);
    }

    #[test]
    fn factor_row_and_bounds() {
        let store = SnapshotStore::new();
        store.install("m", 0, &fitted(5));
        let s = store.get("m").unwrap();
        let row = s.factor_row(1, 3).unwrap();
        assert_eq!(row.len(), 3);
        assert!(row.iter().all(|v| v.is_finite()));
        assert!(s.factor_row(7, 0).is_err(), "bad mode");
        assert!(s.factor_row(0, 999).is_err(), "bad row");
    }

    #[test]
    fn top_k_matches_exhaustive_scoring() {
        let store = SnapshotStore::new();
        store.install("m", 0, &fitted(6));
        let s = store.get("m").unwrap();
        let got = s.top_k(0, &[2, 5], 1, 3).unwrap();
        assert_eq!(got.len(), 2);
        for (qi, &row) in [2usize, 5].iter().enumerate() {
            // Exhaustive oracle.
            let q = s.factor_row(0, row).unwrap();
            let mut all: Vec<(usize, f64)> = (0..s.dims[1])
                .map(|j| {
                    let t = s.factor_row(1, j).unwrap();
                    let score = q
                        .iter()
                        .zip(s.lambda.iter())
                        .zip(t)
                        .map(|((a, l), b)| a * l * b)
                        .sum();
                    (j, score)
                })
                .collect();
            all.sort_by(|a, b| b.1.total_cmp(&a.1));
            let want: Vec<usize> = all[..3].iter().map(|&(j, _)| j).collect();
            let got_ids: Vec<usize> = got[qi].iter().map(|&(j, _)| j).collect();
            assert_eq!(got_ids, want, "row {row}");
            assert!(got[qi].windows(2).all(|w| w[0].1 >= w[1].1), "sorted");
        }
        // k larger than the target mode clamps.
        assert_eq!(s.top_k(0, &[0], 1, 99).unwrap()[0].len(), s.dims[1]);
        assert!(s.top_k(0, &[0], 0, 2).is_err(), "same-mode query");
        assert!(s.top_k(0, &[0], 9, 2).is_err(), "bad target mode");
    }

    #[test]
    fn concurrent_install_and_get_never_tears() {
        use std::sync::atomic::AtomicBool;
        let store = Arc::new(SnapshotStore::new());
        let results: Vec<CpdResult> = (0..4).map(|i| fitted(10 + i)).collect();
        let stop = Arc::new(AtomicBool::new(false));
        store.install("m", 0, &results[0]);
        std::thread::scope(|scope| {
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let store = Arc::clone(&store);
                    let stop = Arc::clone(&stop);
                    scope.spawn(move || {
                        // Read at least once even if the writer wins
                        // the race and finishes before we start.
                        let mut seen = 0u64;
                        loop {
                            let s = store.get("m").expect("always published");
                            assert_eq!(
                                s.checksum,
                                s.recompute_checksum(),
                                "torn snapshot observed at generation {}",
                                s.generation
                            );
                            assert_eq!(s.dims.len(), s.factors.len());
                            assert!(s.generation >= seen, "generation went backwards");
                            seen = s.generation;
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                        }
                        seen
                    })
                })
                .collect();
            for round in 0..50 {
                let r = &results[round % results.len()];
                store.install("m", round, r);
                if round % 8 == 0 {
                    store.mark_stale("m", "injected");
                }
            }
            stop.store(true, Ordering::Relaxed);
            for r in readers {
                assert!(r.join().unwrap() >= 1);
            }
        });
        assert_eq!(store.get("m").unwrap().generation, 51);
    }
}
