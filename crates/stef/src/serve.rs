//! `stef serve` — the long-running decomposition daemon.
//!
//! A minimal, dependency-free HTTP/1.1 server over
//! [`std::net::TcpListener`] that multiplexes concurrent decomposition
//! jobs over the shared worker pool via the PR 6 [`Supervisor`] (write
//! side) and answers factor queries from atomically-swapped
//! [`SnapshotStore`] snapshots (read side), so queries never block on a
//! refit. The robustness properties are the point:
//!
//! * **Crash recovery** — the CLI builds the supervisor with
//!   [`Supervisor::resume`] when the journal exists, so a `kill -9`'d
//!   daemon restarts exactly its unfinished jobs from their checkpoints
//!   and converges bit-identically (exercised by the kill-9 test in
//!   `stef-cli`).
//! * **Overload shedding** — submission admission is priced by
//!   [`crate::supervisor::price_job`] against the configured envelopes;
//!   over-envelope submits answer HTTP 503 with the
//!   [`StefError::Overloaded`] taxonomy. The accept queue is bounded
//!   (over-limit connections get an immediate 503 and a close), and
//!   every connection carries read/write timeouts so a slow client
//!   wedges neither an acceptor nor a handler.
//! * **Graceful drain** — when the stop token fires (the CLI wires it
//!   to SIGTERM / first Ctrl-C), the acceptor stops, keep-alive
//!   connections close after their in-flight request, jobs get
//!   [`ServeConfig::drain_grace`] to finish before their tokens are
//!   cancelled (cooperative checkpoint, journaled `Interrupted`,
//!   resumable), and the journal is compacted + fsynced on the way out.
//! * **Degraded serving** — failed or shed refits mark the model's last
//!   good snapshot stale ([`SnapshotStore::mark_stale`]); queries keep
//!   answering, labelled.
//!
//! ## Protocol
//!
//! Request bodies are plain text (`key=value` tokens — the jobs-file
//! grammar for submits); responses are JSON. Endpoints:
//!
//! ```text
//! GET  /healthz                              state + queue/model counters (503 once draining)
//! GET  /metrics                              Prometheus text exposition of the metrics registry
//! POST /jobs                                 body: <tensor> [rank=..] [model=..] ...
//! GET  /jobs/<id>                            job status
//! POST /jobs/<id>/cancel                     cooperative cancel
//! GET  /models                               model names
//! GET  /models/<name>                        snapshot metadata + content checksum
//! GET  /models/<name>/factor/<mode>/<row>    one factor row
//! POST /models/<name>/topk                   body: mode=M target=T k=K rows=1,2,3
//! ```

use crate::error::StefError;
use crate::runtime::CancelToken;
use crate::snapshot::SnapshotStore;
use crate::supervisor::{
    json_num, json_str, parse_job_line, BatchReport, JobHook, JobOutcome, JobStatus, Supervisor,
};
use crate::sync::{lock_unpoisoned, wait_timeout_unpoisoned};
use crate::telemetry;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Serving configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks a free one).
    pub addr: String,
    /// Connection-handler threads (the *job* concurrency is the
    /// supervisor's `max_concurrent`, not this).
    pub handler_threads: usize,
    /// Accepted-but-unclaimed connection bound; connections beyond it
    /// are answered 503 and closed instead of queueing without bound.
    pub accept_backlog: usize,
    /// Per-connection read timeout (slow or silent clients are dropped).
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Rank used when a submit line carries no `rank=`.
    pub default_rank: usize,
    /// How long a drain waits for in-flight jobs to finish on their own
    /// before cancelling them (they checkpoint and journal
    /// `Interrupted`, so nothing is lost either way — the grace only
    /// saves the next restart some re-fitting).
    pub drain_grace: Duration,
    /// Request-body byte cap (larger submits answer 413).
    pub max_body_bytes: usize,
    /// Requests served on one keep-alive connection before it is closed
    /// (`Connection: close` on the last response). Handlers are a fixed
    /// pool, so without a cap `handler_threads` slow-but-active
    /// keep-alive clients would hold every handler forever and starve
    /// queued connections (including `/healthz` probes).
    pub max_requests_per_conn: usize,
    /// Total lifetime bound for one connection; checked at request
    /// boundaries, so together with [`ServeConfig::read_timeout`] a
    /// handler is occupied by one connection for at most
    /// `max_conn_lifetime + read_timeout`.
    pub max_conn_lifetime: Duration,
    /// Interval between periodic [`crate::metrics`] flushes into the
    /// supervisor's JSONL metrics sink (`Duration::ZERO` disables the
    /// flusher). Each flush is one `"kind":"metrics_flush"` line, so a
    /// long-running daemon leaves a coarse time series behind even if
    /// nobody ever scrapes `/metrics`.
    pub metrics_flush: Duration,
}

impl ServeConfig {
    /// Defaults: 4 handler threads, 64-connection backlog, 5 s
    /// read/write timeouts, rank 16, 2 s drain grace, 1 MiB bodies,
    /// 32 requests / 30 s per keep-alive connection, 10 s metrics
    /// flushes.
    pub fn new(addr: impl Into<String>) -> ServeConfig {
        ServeConfig {
            addr: addr.into(),
            handler_threads: 4,
            accept_backlog: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            default_rank: 16,
            drain_grace: Duration::from_secs(2),
            max_body_bytes: 1 << 20,
            max_requests_per_conn: 32,
            max_conn_lifetime: Duration::from_secs(30),
            metrics_flush: Duration::from_secs(10),
        }
    }
}

/// The standard supervisor→store publication wiring: `Done` installs a
/// fresh snapshot under the job's model name, `Failed`/`Interrupted`
/// mark the last good snapshot stale (degraded serving). Install it as
/// [`crate::supervisor::SupervisorConfig::on_outcome`].
pub fn outcome_hook(store: Arc<SnapshotStore>) -> JobHook {
    JobHook::new(move |id, spec, outcome| {
        let model = spec.model_name();
        match outcome {
            JobOutcome::Done(result) => {
                let generation = store.install(model, id, result);
                crate::flight::record(crate::flight::FlightEvent::SnapshotInstall, id as u64, generation);
                telemetry::info("serve", || {
                    format!("model '{model}' generation {generation} published by job {id}")
                });
            }
            JobOutcome::Failed(e) => {
                let reason = format!("refit failed: {e}");
                if store.mark_stale(model, &reason) {
                    telemetry::warn("serve", || format!("model '{model}' now stale ({reason})"));
                }
            }
            JobOutcome::Interrupted => {
                let _ = store.mark_stale(model, "refit interrupted");
            }
        }
    })
}

/// Counters surfaced by `/healthz`.
#[derive(Debug, Default)]
struct ServeStats {
    submits: AtomicU64,
    sheds: AtomicU64,
    queries: AtomicU64,
    busy_rejected: AtomicU64,
}

struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    cv: Condvar,
}

/// A running (or ready-to-run) daemon. [`Server::bind`] claims the
/// socket; [`Server::run`] blocks serving until the stop token fires,
/// then drains and returns the final job report.
pub struct Server {
    cfg: ServeConfig,
    sup: Arc<Supervisor>,
    store: Arc<SnapshotStore>,
    stop: CancelToken,
    listener: TcpListener,
    addr: SocketAddr,
    stats: ServeStats,
    started: Instant,
}

/// Alias kept for the public re-export; the server *is* the handle.
pub type ServeHandle = Server;

impl Server {
    /// Binds the listening socket. The `stop` token is the drain
    /// signal: cancel it (e.g. from a SIGTERM handler) and
    /// [`Server::run`] winds the daemon down gracefully.
    pub fn bind(
        cfg: ServeConfig,
        sup: Arc<Supervisor>,
        store: Arc<SnapshotStore>,
        stop: CancelToken,
    ) -> Result<Server, StefError> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| StefError::Input(format!("cannot bind '{}': {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| StefError::Input(format!("cannot resolve bound address: {e}")))?;
        Ok(Server {
            cfg,
            sup,
            store,
            stop,
            listener,
            addr,
            stats: ServeStats::default(),
            started: Instant::now(),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until the stop token fires, then drains: admission stops,
    /// in-flight jobs get [`ServeConfig::drain_grace`] to finish before
    /// their tokens are cancelled (checkpoint + journaled
    /// `Interrupted`), the journal is compacted (fsynced via the
    /// temp-file + rename protocol), and the final report is returned.
    pub fn run(&self) -> BatchReport {
        let job_stop = CancelToken::new();
        let conns = ConnQueue {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        };
        let report = std::thread::scope(|s| {
            let runner = s.spawn(|| self.sup.run_service(&job_stop));
            for _ in 0..self.cfg.handler_threads.max(1) {
                s.spawn(|| self.handler_loop(&conns));
            }
            if crate::metrics::COMPILED && !self.cfg.metrics_flush.is_zero() {
                s.spawn(|| self.flusher_loop());
            }
            self.accept_loop(&conns);

            // --- drain ---
            self.sup.begin_drain();
            crate::flight::record(crate::flight::FlightEvent::Drain, 0, 0);
            conns.cv.notify_all();
            telemetry::info("serve", || "draining (admission stopped)".into());
            let deadline = Instant::now() + self.cfg.drain_grace;
            loop {
                let (queued, running) = self.sup.load_counts();
                if (queued == 0 && running == 0) || Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            // Stop workers claiming anything further *before* cancelling
            // the running tokens: in the other order a worker can claim
            // a queued job in the gap and start it with an uncancelled
            // token, delaying shutdown by a full refit after the grace
            // already expired. `cancel_running` then covers both running
            // jobs and the claimed-but-not-yet-started stragglers.
            job_stop.cancel();
            let cancelled = self.sup.cancel_running();
            if cancelled > 0 {
                telemetry::info("serve", || {
                    format!("drain grace expired, cancelled {cancelled} running job(s)")
                });
            }
            runner.join().unwrap_or_else(|_| self.sup.report())
        });
        // Compaction rewrites through a temp file, fsyncs it, and
        // fsyncs the directory after the rename — the drain-time
        // journal fsync and the unbounded-growth fix in one step.
        match self.sup.compact_journal() {
            Ok(dropped) if dropped > 0 => {
                telemetry::info("serve", || format!("journal compacted, {dropped} record(s) dropped"))
            }
            Ok(_) => {}
            Err(e) => telemetry::warn("serve", || format!("drain compaction failed: {e}")),
        }
        report
    }

    fn accept_loop(&self, conns: &ConnQueue) {
        // Non-blocking accept so the loop observes the stop token even
        // when no client ever connects.
        let _ = self.listener.set_nonblocking(true);
        while !self.stop.is_cancelled() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let mut queue = lock_unpoisoned(&conns.queue);
                    if queue.len() >= self.cfg.accept_backlog.max(1) {
                        drop(queue);
                        self.stats.busy_rejected.fetch_add(1, Ordering::Relaxed);
                        let mut stream = stream;
                        let _ = stream.set_write_timeout(Some(self.cfg.write_timeout));
                        let _ = write_response(
                            &mut stream,
                            503,
                            CT_JSON,
                            &err_body("accept queue full"),
                            true,
                        );
                    } else {
                        queue.push_back(stream);
                        drop(queue);
                        conns.cv.notify_one();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.poll_dump_request();
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    telemetry::debug("serve", || format!("accept error: {e}"));
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }

    /// Services a pending flight-recorder dump request (the CLI's
    /// SIGUSR1 handler merely sets a flag; the actual file write has to
    /// happen on a normal thread, and the accept loop's idle poll is
    /// the one place guaranteed to run regularly while serving).
    fn poll_dump_request(&self) {
        if crate::flight::take_dump_request() {
            match crate::flight::dump("sigusr1") {
                Some(path) => telemetry::info("serve", || {
                    format!("flight recorder dumped to {}", path.display())
                }),
                None => telemetry::info("serve", || {
                    "flight recorder dump requested, but the buffer is empty".into()
                }),
            }
        }
    }

    /// Periodic registry flush into the supervisor's JSONL metrics
    /// sink. Exits when the stop token fires; the short sleep keeps the
    /// drain from waiting on a full flush interval.
    fn flusher_loop(&self) {
        let mut next = Instant::now() + self.cfg.metrics_flush;
        while !self.stop.is_cancelled() {
            std::thread::sleep(Duration::from_millis(50));
            if Instant::now() < next {
                continue;
            }
            next = Instant::now() + self.cfg.metrics_flush;
            let line = crate::metrics::render_flush_jsonl(telemetry::uptime_seconds());
            self.sup.append_metrics_line(&line);
        }
    }

    fn handler_loop(&self, conns: &ConnQueue) {
        loop {
            let stream = {
                let mut queue = lock_unpoisoned(&conns.queue);
                loop {
                    if let Some(s) = queue.pop_front() {
                        break Some(s);
                    }
                    if self.stop.is_cancelled() {
                        break None;
                    }
                    queue =
                        wait_timeout_unpoisoned(&conns.cv, queue, Duration::from_millis(50));
                }
            };
            match stream {
                Some(s) => self.handle_conn(s),
                None => return,
            }
        }
    }

    /// One persistent (keep-alive) connection. Timeouts bound every
    /// read and write; after a stop the connection closes at the next
    /// request boundary so a chatty client cannot hold the drain open.
    /// Request-count and lifetime caps close the connection (with
    /// `Connection: close`) so a fixed handler pool round-robins across
    /// clients instead of being monopolized by whoever connected first.
    fn handle_conn(&self, stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(self.cfg.read_timeout));
        let _ = stream.set_write_timeout(Some(self.cfg.write_timeout));
        let _ = stream.set_nodelay(true);
        let Ok(read_half) = stream.try_clone() else { return };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        let opened = Instant::now();
        let mut served = 0usize;
        loop {
            let req = match read_request(&mut reader, self.cfg.max_body_bytes) {
                Ok(req) => req,
                Err(ReadError::Eof) | Err(ReadError::Io) => return,
                Err(ReadError::TooLarge) => {
                    self.observe_http("POST", 413, Instant::now());
                    let _ = write_response(
                        &mut writer,
                        413,
                        CT_JSON,
                        &err_body("request body too large"),
                        true,
                    );
                    return;
                }
                Err(ReadError::Bad(reason)) => {
                    self.observe_http("GET", 400, Instant::now());
                    let _ = write_response(&mut writer, 400, CT_JSON, &err_body(&reason), true);
                    return;
                }
            };
            served += 1;
            let close = req.close
                || self.stop.is_cancelled()
                || served >= self.cfg.max_requests_per_conn.max(1)
                || opened.elapsed() >= self.cfg.max_conn_lifetime;
            let t0 = Instant::now();
            let (status, body) = self.dispatch(&req);
            self.observe_http(&req.method, status, t0);
            // `/metrics` is the one non-JSON endpoint: Prometheus'
            // text exposition format, version-tagged per convention.
            let ctype = if status == 200
                && req.path.split('?').next() == Some("/metrics")
            {
                CT_PROMETHEUS
            } else {
                CT_JSON
            };
            if write_response(&mut writer, status, ctype, &body, close).is_err() || close {
                return;
            }
        }
    }

    /// One relaxed counter bump + histogram observe per request; the
    /// label set is bounded (3 methods × the fixed status table), and
    /// when the registry is disabled or compiled out both calls are
    /// no-ops after a single relaxed load.
    fn observe_http(&self, method: &str, status: u16, t0: Instant) {
        if !crate::metrics::enabled() {
            return;
        }
        let dt = t0.elapsed();
        let method = match method {
            "GET" => "GET",
            "POST" => "POST",
            _ => "other",
        };
        crate::metrics::counter(
            "stef_http_requests_total",
            "HTTP requests served, by method and status.",
            &[
                ("method", method),
                ("status", crate::metrics::status_label(status)),
            ],
        )
        .inc();
        crate::metrics::histogram(
            "stef_http_request_seconds",
            "HTTP request handling latency (read excluded, dispatch + encode).",
            &[],
            crate::metrics::TIME_BUCKETS,
        )
        .observe(dt.as_secs_f64());
        crate::flight::record(
            crate::flight::FlightEvent::Http,
            status as u64,
            dt.as_nanos() as u64,
        );
    }

    fn dispatch(&self, req: &Request) -> (u16, String) {
        // Split *before* decoding, so a model name containing '/'
        // (legal at submit time — names default to the tensor spec) is
        // reachable as a single `%2F`-escaped segment.
        let mut decoded: Vec<String> = Vec::new();
        for seg in req
            .path
            .split('?')
            .next()
            .unwrap_or("")
            .split('/')
            .filter(|s| !s.is_empty())
        {
            match pct_decode_segment(seg) {
                Some(s) => decoded.push(s),
                None => {
                    return (400, err_body(&format!("bad percent-escape in '{seg}'")));
                }
            }
        }
        let segs: Vec<&str> = decoded.iter().map(|s| s.as_str()).collect();
        match (req.method.as_str(), segs.as_slice()) {
            ("GET", ["healthz"]) => self.healthz(),
            ("GET", ["metrics"]) => self.metrics_text(),
            ("POST", ["jobs"]) => self.submit(req.body.trim()),
            ("GET", ["jobs", id]) => self.job_status(id),
            ("POST", ["jobs", id, "cancel"]) => self.job_cancel(id),
            ("GET", ["models"]) => self.model_list(),
            ("GET", ["models", name]) => self.model_meta(name),
            ("GET", ["models", name, "factor", mode, row]) => self.factor(name, mode, row),
            ("POST", ["models", name, "topk"]) => self.top_k(name, req.body.trim()),
            _ => (404, err_body("no such endpoint")),
        }
    }

    fn healthz(&self) -> (u16, String) {
        let (queued, running) = self.sup.load_counts();
        let draining = self.stop.is_cancelled() || self.sup.is_draining();
        let state = if draining { "draining" } else { "serving" };
        // A draining daemon answers 503 so load balancers and probe
        // loops stop routing to it the moment the drain begins — the
        // body still carries the full counter set for post-mortems.
        let status = if draining { 503 } else { 200 };
        (
            status,
            format!(
                "{{\"state\":\"{state}\",\"draining\":{draining},\"queued\":{queued},\
                 \"queue_depth\":{queued},\"running\":{running},\
                 \"models\":{},\"installs\":{},\"snapshot_generations\":{},\
                 \"uptime_s\":{},\"submits\":{},\"shed\":{},\"queries\":{},\
                 \"busy_rejected\":{}}}",
                self.store.models().len(),
                self.store.installs(),
                self.store.installs(),
                json_num(self.started.elapsed().as_secs_f64()),
                self.stats.submits.load(Ordering::Relaxed),
                self.stats.sheds.load(Ordering::Relaxed),
                self.stats.queries.load(Ordering::Relaxed),
                self.stats.busy_rejected.load(Ordering::Relaxed),
            ),
        )
    }

    /// `GET /metrics` — the whole registry in Prometheus text format.
    /// Point-in-time state (queue depth, snapshot ages, uptime, the
    /// `/healthz` counter quartet) is folded into gauges at scrape time
    /// so one scrape carries both the hot-path counters and the current
    /// picture.
    fn metrics_text(&self) -> (u16, String) {
        use crate::metrics as m;
        if !m::COMPILED {
            return (
                200,
                "# stef built without the 'telemetry' feature; registry compiled out\n".into(),
            );
        }
        let (queued, running) = self.sup.load_counts();
        m::gauge("stef_jobs_queued", "Jobs waiting in the supervisor queue.", &[])
            .set(queued as f64);
        m::gauge("stef_jobs_running", "Jobs currently refitting.", &[]).set(running as f64);
        m::gauge("stef_uptime_seconds", "Seconds since the daemon bound its socket.", &[])
            .set(self.started.elapsed().as_secs_f64());
        let models = self.store.models();
        let stale = models
            .iter()
            .filter(|n| self.store.get(n).is_some_and(|s| s.stale))
            .count();
        m::gauge("stef_snapshot_models", "Models with an installed snapshot.", &[])
            .set(models.len() as f64);
        m::gauge(
            "stef_snapshot_generations",
            "Total snapshot installs since start (monotonic generation counter).",
            &[],
        )
        .set(self.store.installs() as f64);
        m::gauge(
            "stef_snapshot_stale",
            "Models whose latest snapshot is marked stale (degraded serving).",
            &[],
        )
        .set(stale as f64);
        m::gauge("stef_serve_submits", "Submit requests accepted for pricing.", &[])
            .set(self.stats.submits.load(Ordering::Relaxed) as f64);
        m::gauge("stef_serve_sheds", "Submits refused by admission pricing.", &[])
            .set(self.stats.sheds.load(Ordering::Relaxed) as f64);
        m::gauge("stef_serve_queries", "Read-side queries answered from snapshots.", &[])
            .set(self.stats.queries.load(Ordering::Relaxed) as f64);
        m::gauge(
            "stef_serve_busy_rejected",
            "Connections 503'd because the accept backlog was full.",
            &[],
        )
        .set(self.stats.busy_rejected.load(Ordering::Relaxed) as f64);
        (200, m::render_prometheus())
    }

    fn submit(&self, line: &str) -> (u16, String) {
        if self.sup.is_draining() || self.stop.is_cancelled() {
            return (503, err_body("draining: not accepting new jobs"));
        }
        let spec = match parse_job_line(line, self.cfg.default_rank) {
            Ok(spec) => spec,
            Err(e) => return (400, err_body(&e)),
        };
        let model = spec.model_name().to_string();
        self.stats.submits.fetch_add(1, Ordering::Relaxed);
        match self.sup.submit(spec) {
            Ok(id) => (
                200,
                format!("{{\"id\":{id},\"model\":{}}}", json_str(&model)),
            ),
            Err(StefError::Overloaded {
                resource,
                required,
                outstanding,
                envelope,
            }) => {
                self.stats.sheds.fetch_add(1, Ordering::Relaxed);
                // Degraded serving: a shed *refit* leaves the model's
                // last good snapshot answering, explicitly stale.
                let _ = self
                    .store
                    .mark_stale(&model, &format!("refit shed: {resource} envelope exceeded"));
                (
                    503,
                    format!(
                        "{{\"error\":\"overloaded\",\"resource\":{},\"required\":{},\
                         \"outstanding\":{},\"envelope\":{}}}",
                        json_str(resource),
                        json_num(required),
                        json_num(outstanding),
                        json_num(envelope),
                    ),
                )
            }
            // The drain flag can flip between the check above and the
            // supervisor's own check; its refusal is still a 503.
            Err(StefError::Input(msg)) if msg.contains("draining") => (503, err_body(&msg)),
            Err(e @ StefError::Input(_)) | Err(e @ StefError::Tns(_)) => {
                (400, err_body(&e.to_string()))
            }
            Err(e) => (500, err_body(&e.to_string())),
        }
    }

    fn job_status(&self, id: &str) -> (u16, String) {
        let Ok(id) = id.parse::<usize>() else {
            return (400, err_body("job id must be an integer"));
        };
        let Some(status) = self.sup.status(id) else {
            return (404, err_body("no such job"));
        };
        let model = self
            .sup
            .job_spec(id)
            .map(|s| s.model_name().to_string())
            .unwrap_or_default();
        let mut body = format!("{{\"id\":{id},\"model\":{}", json_str(&model));
        match status {
            JobStatus::Queued => body.push_str(",\"status\":\"queued\""),
            JobStatus::Running { attempt } => {
                body.push_str(&format!(",\"status\":\"running\",\"attempt\":{attempt}"))
            }
            JobStatus::Done {
                attempts,
                iterations,
                final_fit,
            } => body.push_str(&format!(
                ",\"status\":\"done\",\"attempts\":{attempts},\"iterations\":{iterations},\
                 \"final_fit\":{}",
                json_num(final_fit)
            )),
            JobStatus::Failed { attempts, error } => body.push_str(&format!(
                ",\"status\":\"failed\",\"attempts\":{attempts},\"error\":{}",
                json_str(&error)
            )),
            JobStatus::Shed => body.push_str(",\"status\":\"shed\""),
            JobStatus::Interrupted => body.push_str(",\"status\":\"interrupted\""),
        }
        body.push('}');
        (200, body)
    }

    fn job_cancel(&self, id: &str) -> (u16, String) {
        let Ok(id) = id.parse::<usize>() else {
            return (400, err_body("job id must be an integer"));
        };
        let cancelled = self.sup.cancel(id);
        (200, format!("{{\"id\":{id},\"cancelled\":{cancelled}}}"))
    }

    fn model_list(&self) -> (u16, String) {
        let names = self.store.models();
        let items: Vec<String> = names.iter().map(|n| json_str(n)).collect();
        (200, format!("{{\"models\":[{}]}}", items.join(",")))
    }

    fn model_meta(&self, name: &str) -> (u16, String) {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let Some(snap) = self.store.get(name) else {
            return (404, err_body("no snapshot for this model"));
        };
        let dims: Vec<String> = snap.dims.iter().map(|d| d.to_string()).collect();
        let stale_reason = match &snap.stale_reason {
            Some(r) => json_str(r),
            None => "null".into(),
        };
        (
            200,
            format!(
                "{{\"model\":{},\"generation\":{},\"job_id\":{},\"rank\":{},\"dims\":[{}],\
                 \"final_fit\":{},\"iterations\":{},\"stale\":{},\"stale_reason\":{stale_reason},\
                 \"checksum\":\"{:016x}\"}}",
                json_str(&snap.model),
                snap.generation,
                snap.job_id,
                snap.rank,
                dims.join(","),
                json_num(snap.final_fit),
                snap.iterations,
                snap.stale,
                snap.checksum,
            ),
        )
    }

    fn factor(&self, name: &str, mode: &str, row: &str) -> (u16, String) {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let (Ok(mode), Ok(row)) = (mode.parse::<usize>(), row.parse::<usize>()) else {
            return (400, err_body("mode and row must be integers"));
        };
        let Some(snap) = self.store.get(name) else {
            return (404, err_body("no snapshot for this model"));
        };
        match snap.factor_row(mode, row) {
            Ok(values) => {
                let vals: Vec<String> = values.iter().map(|&v| json_num(v)).collect();
                (
                    200,
                    format!(
                        "{{\"model\":{},\"generation\":{},\"stale\":{},\"mode\":{mode},\
                         \"row\":{row},\"values\":[{}]}}",
                        json_str(&snap.model),
                        snap.generation,
                        snap.stale,
                        vals.join(","),
                    ),
                )
            }
            Err(e) => (400, err_body(&e.to_string())),
        }
    }

    fn top_k(&self, name: &str, body: &str) -> (u16, String) {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let Some(snap) = self.store.get(name) else {
            return (404, err_body("no snapshot for this model"));
        };
        let mut mode = None;
        let mut target = None;
        let mut k = 10usize;
        let mut rows: Vec<usize> = Vec::new();
        for tok in body.split_whitespace() {
            let Some((key, value)) = tok.split_once('=') else {
                return (400, err_body(&format!("expected 'key=value', got '{tok}'")));
            };
            let bad = || err_body(&format!("bad {key} '{value}'"));
            match key {
                "mode" => match value.parse() {
                    Ok(v) => mode = Some(v),
                    Err(_) => return (400, bad()),
                },
                "target" => match value.parse() {
                    Ok(v) => target = Some(v),
                    Err(_) => return (400, bad()),
                },
                "k" => match value.parse() {
                    Ok(v) => k = v,
                    Err(_) => return (400, bad()),
                },
                "rows" => {
                    for r in value.split(',') {
                        match r.parse() {
                            Ok(v) => rows.push(v),
                            Err(_) => return (400, bad()),
                        }
                    }
                }
                _ => return (400, err_body(&format!("unknown field '{key}'"))),
            }
        }
        let (Some(mode), Some(target)) = (mode, target) else {
            return (400, err_body("topk needs mode=, target=, rows="));
        };
        if rows.is_empty() {
            return (400, err_body("topk needs at least one row"));
        }
        match snap.top_k(mode, &rows, target, k) {
            Ok(results) => {
                let per_row: Vec<String> = rows
                    .iter()
                    .zip(&results)
                    .map(|(row, best)| {
                        let pairs: Vec<String> = best
                            .iter()
                            .map(|&(j, score)| format!("[{j},{}]", json_num(score)))
                            .collect();
                        format!("{{\"row\":{row},\"top\":[{}]}}", pairs.join(","))
                    })
                    .collect();
                (
                    200,
                    format!(
                        "{{\"model\":{},\"generation\":{},\"stale\":{},\"results\":[{}]}}",
                        json_str(&snap.model),
                        snap.generation,
                        snap.stale,
                        per_row.join(","),
                    ),
                )
            }
            Err(e) => (400, err_body(&e.to_string())),
        }
    }
}

// ---------------------------------------------------------------------
// HTTP plumbing
// ---------------------------------------------------------------------

struct Request {
    method: String,
    path: String,
    body: String,
    close: bool,
}

enum ReadError {
    /// Clean end of stream at a request boundary.
    Eof,
    /// Read failure or timeout mid-request; drop without a response.
    Io,
    /// Body exceeds the configured cap.
    TooLarge,
    /// Malformed request; answer 400.
    Bad(String),
}

/// Reads one line with a hard byte cap, so a client streaming an
/// endless headerless request cannot grow the buffer without bound.
fn read_line_capped(
    reader: &mut BufReader<TcpStream>,
    cap: u64,
) -> Result<Option<String>, ReadError> {
    let mut line = String::new();
    match reader.by_ref().take(cap).read_line(&mut line) {
        Ok(0) => Ok(None),
        Ok(n) => {
            if !line.ends_with('\n') && n as u64 == cap {
                Err(ReadError::Bad("request line too long".into()))
            } else {
                Ok(Some(line))
            }
        }
        Err(_) => Err(ReadError::Io),
    }
}

fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Request, ReadError> {
    let line = match read_line_capped(reader, 8192)? {
        Some(line) => line,
        None => return Err(ReadError::Eof),
    };
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Bad("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ReadError::Bad("request line has no path".into()))?
        .to_string();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Bad(format!("unsupported version '{version}'")));
    }
    let mut content_length = 0usize;
    let mut close = false;
    for _ in 0..100 {
        let header = match read_line_capped(reader, 8192)? {
            Some(h) => h,
            None => return Err(ReadError::Io),
        };
        let header = header.trim_end();
        if header.is_empty() {
            // Cap check *before* the allocation: a hostile
            // `Content-Length: 2^64-1` must answer 413, not abort the
            // process on a failed multi-exabyte zeroed allocation.
            if content_length > max_body {
                return Err(ReadError::TooLarge);
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).map_err(|_| ReadError::Io)?;
            let body =
                String::from_utf8(body).map_err(|_| ReadError::Bad("body is not UTF-8".into()))?;
            return Ok(Request {
                method,
                path,
                body,
                close,
            });
        }
        if let Some((key, value)) = header.split_once(':') {
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim();
            if key == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| ReadError::Bad("bad Content-Length".into()))?;
            } else if key == "connection" && value.eq_ignore_ascii_case("close") {
                close = true;
            }
        }
    }
    Err(ReadError::Bad("too many headers".into()))
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Default (JSON) response content type.
const CT_JSON: &str = "application/json";
/// `/metrics` content type — Prometheus text exposition format 0.0.4.
const CT_PROMETHEUS: &str = "text/plain; version=0.0.4";

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n\r\n",
        status_reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn err_body(msg: &str) -> String {
    format!("{{\"error\":{}}}", json_str(msg))
}

/// Decodes one `%XX`-escaped URL path segment. `None` on a truncated or
/// non-hex escape, or when the decoded bytes are not UTF-8.
fn pct_decode_segment(seg: &str) -> Option<String> {
    let bytes = seg.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = |b: u8| (b as char).to_digit(16);
            let hi = hex(*bytes.get(i + 1)?)?;
            let lo = hex(*bytes.get(i + 2)?)?;
            out.push((hi * 16 + lo) as u8);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MttkrpEngine, ReferenceEngine};
    use crate::supervisor::{EngineFactory, SupervisorConfig, TensorLoader};
    use std::path::PathBuf;
    use workloads::power_law_tensor;

    fn tmp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicUsize;
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "stef-serve-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn loader() -> TensorLoader {
        Arc::new(|spec: &str| {
            // "gen:<d0>x<d1>x<d2>:<nnz>:<seed>"
            let parts: Vec<&str> = spec.split(':').collect();
            if parts.len() != 4 || parts[0] != "gen" {
                return Err(StefError::Input(format!("bad test spec '{spec}'")));
            }
            let dims: Vec<usize> = parts[1]
                .split('x')
                .map(|t| t.parse().map_err(|_| StefError::Input("bad dim".into())))
                .collect::<Result<_, _>>()?;
            let nnz = parts[2]
                .parse()
                .map_err(|_| StefError::Input("bad nnz".into()))?;
            let seed = parts[3]
                .parse()
                .map_err(|_| StefError::Input("bad seed".into()))?;
            let skews = vec![0.5; dims.len()];
            Ok(power_law_tensor(&dims, nnz, &skews, seed))
        })
    }

    fn factory() -> EngineFactory {
        Arc::new(|_spec, tensor, _token, _attempt| {
            Ok(Box::new(ReferenceEngine::new(tensor.clone())) as Box<dyn MttkrpEngine>)
        })
    }

    struct TestServer {
        stop: CancelToken,
        addr: SocketAddr,
        thread: Option<std::thread::JoinHandle<BatchReport>>,
    }

    impl TestServer {
        fn start(cfg_mut: impl FnOnce(&mut SupervisorConfig)) -> (TestServer, PathBuf) {
            Self::start_with(cfg_mut, |_| {})
        }

        fn start_with(
            cfg_mut: impl FnOnce(&mut SupervisorConfig),
            serve_mut: impl FnOnce(&mut ServeConfig),
        ) -> (TestServer, PathBuf) {
            let dir = tmp_dir("e2e");
            let store = Arc::new(SnapshotStore::new());
            let mut scfg = SupervisorConfig::new(dir.join("serve.journal"), dir.join("ckpts"));
            scfg.max_concurrent = 2;
            scfg.on_outcome = Some(outcome_hook(Arc::clone(&store)));
            cfg_mut(&mut scfg);
            let sup = Arc::new(Supervisor::new(scfg, loader(), factory()).unwrap());
            let stop = CancelToken::new();
            let mut cfg = ServeConfig::new("127.0.0.1:0");
            cfg.drain_grace = Duration::from_millis(500);
            cfg.handler_threads = 2;
            serve_mut(&mut cfg);
            let server = Server::bind(cfg, sup, store, stop.clone()).unwrap();
            let addr = server.local_addr();
            let thread = std::thread::spawn(move || server.run());
            (
                TestServer {
                    stop,
                    addr,
                    thread: Some(thread),
                },
                dir,
            )
        }

        fn request(&self, method: &str, path: &str, body: &str) -> (u16, String) {
            let mut stream = TcpStream::connect(self.addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let req = format!(
                "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{body}",
                body.len()
            );
            stream.write_all(req.as_bytes()).unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            let status: u16 = response
                .split_whitespace()
                .nth(1)
                .expect("status line")
                .parse()
                .expect("numeric status");
            let payload = response
                .split("\r\n\r\n")
                .nth(1)
                .unwrap_or_default()
                .to_string();
            (status, payload)
        }

        fn wait_for_done(&self, id: usize) {
            let deadline = Instant::now() + Duration::from_secs(30);
            loop {
                let (status, body) = self.request("GET", &format!("/jobs/{id}"), "");
                assert_eq!(status, 200, "{body}");
                if body.contains("\"status\":\"done\"") {
                    return;
                }
                assert!(
                    !body.contains("\"status\":\"failed\""),
                    "job {id} failed: {body}"
                );
                assert!(Instant::now() < deadline, "job {id} never finished: {body}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }

        fn shutdown(mut self) -> BatchReport {
            self.stop.cancel();
            self.thread.take().unwrap().join().unwrap()
        }
    }

    #[test]
    fn submit_query_and_drain_end_to_end() {
        let (server, dir) = TestServer::start(|_| {});
        let (status, body) = server.request("GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"state\":\"serving\""), "{body}");

        // Submit under an explicit model name, wait, query.
        let (status, body) = server.request(
            "POST",
            "/jobs",
            "gen:12x10x8:300:7 rank=3 iters=4 tol=0 model=demo",
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"id\":0"), "{body}");
        server.wait_for_done(0);

        let (status, body) = server.request("GET", "/models/demo", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"generation\":1"), "{body}");
        assert!(body.contains("\"stale\":false"), "{body}");

        let (status, body) = server.request("GET", "/models/demo/factor/0/3", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"values\":["), "{body}");

        let (status, body) =
            server.request("POST", "/models/demo/topk", "mode=0 target=1 k=3 rows=0,2");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"results\":["), "{body}");

        // Unknown endpoints and malformed requests answer, not panic.
        let (status, _) = server.request("GET", "/nope", "");
        assert_eq!(status, 404);
        let (status, _) = server.request("POST", "/jobs", "gen:2x2x2:4:1 bogus=1");
        assert_eq!(status, 400);
        let (status, _) = server.request("GET", "/models/ghost", "");
        assert_eq!(status, 404);

        let report = server.shutdown();
        assert_eq!(report.done(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overloaded_submit_answers_503_with_taxonomy() {
        let (server, dir) = TestServer::start(|cfg| {
            cfg.memory_envelope = 1; // everything is over-envelope
        });
        let (status, body) = server.request("POST", "/jobs", "gen:12x10x8:300:7 rank=3");
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("\"error\":\"overloaded\""), "{body}");
        assert!(body.contains("\"resource\":\"memory\""), "{body}");
        assert!(body.contains("\"envelope\":"), "{body}");
        let report = server.shutdown();
        assert_eq!(report.shed(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn draining_server_refuses_submits_but_serves_queries() {
        let (server, dir) = TestServer::start(|_| {});
        let (status, _) = server.request(
            "POST",
            "/jobs",
            "gen:12x10x8:300:7 rank=3 iters=4 tol=0 model=m",
        );
        assert_eq!(status, 200);
        server.wait_for_done(0);

        // Flip the drain signal, then verify behavior before shutdown
        // completes: reads still answer, writes are refused.
        server.stop.cancel();
        // Best-effort probe: if the listener is already gone (fully
        // drained) or the connection dies mid-request, that's a valid
        // shutdown ordering too — only a *successful* submit may not
        // answer anything but 503.
        if let Ok(mut stream) = TcpStream::connect(server.addr) {
            let req = b"POST /jobs HTTP/1.1\r\nContent-Length: 20\r\nConnection: close\r\n\r\ngen:4x4x4:8:1 rank=2";
            let mut response = String::new();
            if stream.write_all(req).is_ok()
                && stream.read_to_string(&mut response).is_ok()
                && !response.is_empty()
            {
                assert!(
                    response.starts_with("HTTP/1.1 503"),
                    "draining submit must 503: {response}"
                );
            }
        }
        let report = server.shutdown();
        assert_eq!(report.done(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_refit_marks_model_stale_and_keeps_serving() {
        let (server, dir) = TestServer::start(|_| {});
        let (status, _) = server.request(
            "POST",
            "/jobs",
            "gen:12x10x8:300:7 rank=3 iters=4 tol=0 model=m",
        );
        assert_eq!(status, 200);
        server.wait_for_done(0);

        // A refit under the same model name with an unloadable tensor
        // fails terminally — the model must degrade, not vanish.
        let (status, body) =
            server.request("POST", "/jobs", "bad:spec rank=3 model=m");
        // The loader runs at submit time, so this dies at admission
        // with a 400 — fall back to an engine-level failure instead:
        // rank 0 passes parsing but fails numerically.
        let _ = (status, body);
        let (status, body) = server.request(
            "POST",
            "/jobs",
            "gen:12x10x8:300:7 rank=0 iters=4 model=m",
        );
        if status == 200 {
            // Wait for the refit to fail, then the snapshot must be
            // stale but still answering with generation 1 data.
            let deadline = Instant::now() + Duration::from_secs(30);
            loop {
                let (_, meta) = server.request("GET", "/models/m", "");
                if meta.contains("\"stale\":true") {
                    assert!(meta.contains("\"generation\":1"), "{meta}");
                    break;
                }
                assert!(Instant::now() < deadline, "model never went stale: {meta}");
                std::thread::sleep(Duration::from_millis(20));
            }
            let (status, row) = server.request("GET", "/models/m/factor/0/0", "");
            assert_eq!(status, 200, "{row}");
            assert!(row.contains("\"stale\":true"), "{row}");
        } else {
            assert_eq!(status, 400, "{body}");
        }
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn huge_content_length_is_rejected_before_allocation() {
        let (server, dir) = TestServer::start(|_| {});
        // u64::MAX parses as a valid usize on 64-bit targets; the cap
        // check must fire before the body buffer is allocated, or this
        // request aborts the process instead of answering 413.
        let mut stream = TcpStream::connect(server.addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(
                b"POST /jobs HTTP/1.1\r\nHost: t\r\n\
                  Content-Length: 18446744073709551615\r\n\r\n",
            )
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Reads one keep-alive response: headers to the blank line, then
    /// exactly `Content-Length` body bytes.
    fn read_one_response(stream: &mut TcpStream) -> String {
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            assert_eq!(stream.read(&mut byte).unwrap(), 1, "eof inside headers");
            head.push(byte[0]);
        }
        let head = String::from_utf8(head).unwrap();
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).unwrap();
        head + &String::from_utf8(body).unwrap()
    }

    #[test]
    fn keep_alive_request_cap_closes_the_connection() {
        let (server, dir) = TestServer::start_with(|_| {}, |cfg| {
            cfg.max_requests_per_conn = 2;
        });
        let mut stream = TcpStream::connect(server.addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let req = b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
        stream.write_all(req).unwrap();
        let first = read_one_response(&mut stream);
        assert!(first.contains("Connection: keep-alive"), "{first}");
        // The capped request answers `Connection: close` and the server
        // hangs up, so a slow-but-active client cannot hold a handler
        // thread forever.
        stream.write_all(req).unwrap();
        let mut rest = String::new();
        stream.read_to_string(&mut rest).unwrap();
        assert!(rest.starts_with("HTTP/1.1 200"), "{rest}");
        assert!(rest.contains("Connection: close"), "{rest}");
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn healthz_reports_draining_with_503() {
        let dir = tmp_dir("hz");
        let store = Arc::new(SnapshotStore::new());
        let mut scfg = SupervisorConfig::new(dir.join("serve.journal"), dir.join("ckpts"));
        scfg.on_outcome = Some(outcome_hook(Arc::clone(&store)));
        let sup = Arc::new(Supervisor::new(scfg, loader(), factory()).unwrap());
        let stop = CancelToken::new();
        let server =
            Server::bind(ServeConfig::new("127.0.0.1:0"), sup, store, stop.clone()).unwrap();
        let (status, body) = server.healthz();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"draining\":false"), "{body}");
        assert!(body.contains("\"queue_depth\":0"), "{body}");
        assert!(body.contains("\"snapshot_generations\":0"), "{body}");
        assert!(body.contains("\"uptime_s\":"), "{body}");
        stop.cancel();
        let (status, body) = server.healthz();
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("\"state\":\"draining\""), "{body}");
        assert!(body.contains("\"draining\":true"), "{body}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let (server, dir) = TestServer::start(|_| {});
        let (status, body) = server.request(
            "POST",
            "/jobs",
            "gen:12x10x8:300:7 rank=3 iters=4 tol=0 model=prom",
        );
        assert_eq!(status, 200, "{body}");
        server.wait_for_done(0);

        // Raw request so the Content-Type header stays visible.
        let mut stream = TcpStream::connect(server.addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(
            response.contains("Content-Type: text/plain; version=0.0.4"),
            "{response}"
        );
        let text = response.split("\r\n\r\n").nth(1).unwrap_or_default();
        let samples = crate::metrics::parse_prometheus_text(text).expect("valid exposition");
        let value = |name: &str| {
            samples
                .iter()
                .filter(|s| s.name == name)
                .map(|s| s.value)
                .sum::<f64>()
        };
        assert!(value("stef_uptime_seconds") > 0.0, "{text}");
        assert!(value("stef_snapshot_generations") >= 1.0, "{text}");
        // The wait_for_done poll loop above went through HTTP, so the
        // request counter must be hot by scrape time. (The registry is
        // process-global, so >= not ==: parallel tests also count.)
        assert!(value("stef_http_requests_total") >= 1.0, "{text}");
        assert!(value("stef_jobs_completed_total") >= 1.0, "{text}");
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn slash_in_model_name_is_reachable_via_percent_escapes() {
        let (server, dir) = TestServer::start(|_| {});
        let (status, body) = server.request(
            "POST",
            "/jobs",
            "gen:12x10x8:300:7 rank=3 iters=4 tol=0 model=demo/v1",
        );
        assert_eq!(status, 200, "{body}");
        server.wait_for_done(0);

        let (status, body) = server.request("GET", "/models/demo%2Fv1", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"model\":\"demo/v1\""), "{body}");
        let (status, body) = server.request("GET", "/models/demo%2Fv1/factor/0/0", "");
        assert_eq!(status, 200, "{body}");

        // Malformed escapes answer 400, not a confusing 404.
        let (status, _) = server.request("GET", "/models/%zz", "");
        assert_eq!(status, 400);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
