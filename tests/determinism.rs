//! Run-to-run determinism: with a fixed seed, CPD-ALS must produce
//! bit-identical factors, weights and fit trajectories every time — for
//! every logical thread count, both kernel paths and every accumulation
//! strategy. The privatized reduction sums thread copies in thread
//! order and the schedule is a pure function of the tensor, so with a
//! sequential fan-out there is no legitimate source of run-to-run
//! variation; any flake here is a data race or an ordering bug in the
//! kernels.
//!
//! When the fan-out actually runs on multiple OS workers, atomic
//! accumulation (and the atomic boundary-row adds of the mode-0 pass)
//! commits in scheduling order, which legitimately perturbs the last
//! few bits. The assertions degrade to close-fit comparisons there and
//! stay bitwise on single-worker machines such as CI runners with one
//! core.

use linalg::Mat;
use stef::{cpd_als, AccumStrategy, CpdOptions, KernelPath, MttkrpEngine, Stef, StefOptions};
use workloads::power_law_tensor;

fn sequential_fanout() -> bool {
    rayon::current_num_threads() == 1
}

fn factor_bits(factors: &[Mat]) -> Vec<u64> {
    factors
        .iter()
        .flat_map(|f| (0..f.rows()).flat_map(|i| f.row(i).iter().map(|v| v.to_bits())))
        .collect()
}

/// (factor bits, fit bits) of one seeded CPD run.
fn run_cpd(nthreads: usize, path: KernelPath, accum: AccumStrategy) -> (Vec<u64>, Vec<u64>) {
    run_cpd_on(nthreads, path, accum, stef::Runtime::Pool)
}

fn run_cpd_on(
    nthreads: usize,
    path: KernelPath,
    accum: AccumStrategy,
    runtime: stef::Runtime,
) -> (Vec<u64>, Vec<u64>) {
    let t = power_law_tensor(&[25, 18, 30], 1_200, &[0.6, 0.4, 0.5], 9);
    let mut opts = StefOptions::new(4);
    opts.num_threads = nthreads;
    opts.kernel_path = path;
    opts.accum = accum;
    opts.runtime = runtime;
    let mut engine = Stef::prepare(&t, opts);
    let cpd_opts = CpdOptions {
        max_iters: 4,
        tol: 0.0,
        seed: 42,
        ..CpdOptions::new(4)
    };
    let result = cpd_als(&mut engine, &cpd_opts).expect("cpd must run");
    let fit_bits = result.fits.iter().map(|f| f.to_bits()).collect();
    (factor_bits(&result.factors), fit_bits)
}

fn assert_same_run(a: &(Vec<u64>, Vec<u64>), b: &(Vec<u64>, Vec<u64>), what: &str) {
    if sequential_fanout() {
        assert_eq!(a, b, "not bit-identical: {what}");
    } else {
        assert_eq!(a.1.len(), b.1.len(), "fit trajectory length: {what}");
        for (&x, &y) in a.1.iter().zip(&b.1) {
            let (fx, fy) = (f64::from_bits(x), f64::from_bits(y));
            assert!((fx - fy).abs() < 1e-9, "fits diverged ({what}): {fx} vs {fy}");
        }
    }
}

#[test]
fn cpd_is_bitwise_reproducible_across_all_configurations() {
    for nthreads in [1usize, 2, 3, 7, 16] {
        for path in [KernelPath::Vectorized, KernelPath::Legacy] {
            for accum in [
                AccumStrategy::Auto,
                AccumStrategy::Privatized,
                AccumStrategy::Atomic,
            ] {
                let first = run_cpd(nthreads, path, accum);
                let second = run_cpd(nthreads, path, accum);
                assert_same_run(
                    &first,
                    &second,
                    &format!("{nthreads} threads, {path:?}, {accum:?}"),
                );
            }
        }
    }
}

#[test]
fn kernel_paths_agree_at_cpd_level() {
    // The vectorized path was built to round exactly like the legacy
    // one; with scalar kernels and no FMA codegen the whole CPD
    // trajectory must match bit for bit. When multiply-adds fuse —
    // compile-time FMA codegen or a runtime-dispatched SIMD path — the
    // fused primitives round once where the legacy mode-u emit rounds
    // twice, so only closeness can be required.
    for nthreads in [1usize, 3, 8] {
        let vec = run_cpd(nthreads, KernelPath::Vectorized, AccumStrategy::Privatized);
        let legacy = run_cpd(nthreads, KernelPath::Legacy, AccumStrategy::Privatized);
        let fused = cfg!(target_feature = "fma")
            || linalg::simd::active() != linalg::simd::SimdPath::Scalar;
        if fused || !sequential_fanout() {
            for (&a, &b) in vec.1.iter().zip(&legacy.1) {
                let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
                assert!((fa - fb).abs() < 1e-9, "fits diverged: {fa} vs {fb}");
            }
        } else {
            assert_eq!(vec, legacy, "paths diverged at {nthreads} threads");
        }
    }
}

#[test]
fn single_mttkrp_is_bitwise_reproducible() {
    // Finer-grained than the CPD check: one raw MTTKRP per mode, run
    // twice, compared bit for bit (catches nondeterminism that ALS
    // normalization might otherwise mask).
    let t = power_law_tensor(&[20, 35, 15], 900, &[0.5, 0.5, 0.5], 13);
    let factors = stef::init_factors(t.dims(), 5, 21);
    for nthreads in [2usize, 7] {
        for accum in [AccumStrategy::Privatized, AccumStrategy::Atomic] {
            let run = || -> Vec<u64> {
                let mut opts = StefOptions::new(5);
                opts.num_threads = nthreads;
                opts.accum = accum;
                let mut engine = Stef::prepare(&t, opts);
                engine
                    .sweep_order()
                    .into_iter()
                    .flat_map(|m| {
                        let out = engine.mttkrp(&factors, m);
                        (0..out.rows())
                            .flat_map(|i| {
                                out.row(i).iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                            })
                            .collect::<Vec<_>>()
                    })
                    .collect()
            };
            let (first, second) = (run(), run());
            if sequential_fanout() {
                assert_eq!(first, second, "{nthreads} threads, {accum:?}");
            } else {
                assert_eq!(first.len(), second.len());
                for (&a, &b) in first.iter().zip(&second) {
                    let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
                    assert!((fa - fb).abs() < 1e-9, "{nthreads} threads, {accum:?}");
                }
            }
        }
    }
}

#[test]
fn pool_and_scoped_runtimes_agree_at_cpd_level() {
    // Switching the executor must not change the answer: the pool and
    // the scoped fallback decompose work identically (same logical
    // threads, same chunking, combination in logical-thread order), so
    // the whole CPD trajectory matches bit for bit whenever the run is
    // deterministic at all, for every kernel path.
    for nthreads in [1usize, 2, 7, 16] {
        for path in [KernelPath::Vectorized, KernelPath::Legacy] {
            for accum in [AccumStrategy::Privatized, AccumStrategy::Atomic] {
                let pool = run_cpd_on(nthreads, path, accum, stef::Runtime::Pool);
                let scoped = run_cpd_on(nthreads, path, accum, stef::Runtime::Scoped);
                assert_same_run(
                    &pool,
                    &scoped,
                    &format!("pool vs scoped: {nthreads} threads, {path:?}, {accum:?}"),
                );
            }
        }
    }
}

#[test]
fn privatized_modeu_is_bitwise_identical_for_any_worker_count() {
    // The strongest determinism claim the runtime makes: on the
    // privatized (atomic-free) kernel path, the *number of pool workers*
    // is invisible — workers claim chunks dynamically, but every chunk
    // writes thread-private state keyed by logical thread, and the
    // reduction always combines copies in logical-thread order. So the
    // bits must match across executors and worker counts even when the
    // fan-out genuinely runs on many OS threads.
    use linalg::Mat;
    use sptensor::build_csf;
    use stef::kernels::{modeu_with, KernelCtx, ResolvedAccum};
    use stef::{LoadBalance, PartialStore, Schedule, Workspace};

    let t = power_law_tensor(&[22, 28, 17], 1_000, &[0.5, 0.5, 0.5], 31);
    let csf = build_csf(&t, &[0, 1, 2]);
    let d = csf.ndim();
    let rank = 5;
    let nthreads = 7;
    let sched = Schedule::build(&csf, nthreads, LoadBalance::NnzBalanced);
    let factors = stef::init_factors(t.dims(), rank, 3);
    let refs: Vec<&Mat> = factors.iter().collect();
    let ctx = KernelCtx::new(&csf, &sched, refs, rank);
    let mut partials = PartialStore::allocate(&csf, &[false; 3], nthreads, rank);
    let max_dim = *csf.level_dims().iter().max().unwrap();

    let mut run = |rt: &stef::Executor| -> Vec<Vec<u64>> {
        let mut ws = Workspace::new(d, rank, nthreads, max_dim);
        let views = partials.shared_views();
        (1..d)
            .map(|u| {
                let mut out = Mat::zeros(csf.level_dims()[u], rank);
                modeu_with(
                    &ctx,
                    &views,
                    false,
                    u,
                    ResolvedAccum::Privatized,
                    rt,
                    &mut ws,
                    &mut out,
                );
                (0..out.rows())
                    .flat_map(|i| out.row(i).iter().map(|v| v.to_bits()).collect::<Vec<_>>())
                    .collect()
            })
            .collect()
    };

    let reference = run(&stef::Executor::new(stef::Runtime::Scoped, 4));
    for workers in [1usize, 2, 4, 8] {
        let pool = stef::Executor::new(stef::Runtime::Pool, workers);
        assert_eq!(
            run(&pool),
            reference,
            "pool({workers} workers) diverged from scoped"
        );
    }
}
