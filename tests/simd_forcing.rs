//! Determinism under forced SIMD dispatch.
//!
//! The runtime-dispatched kernel layer must be a pure performance knob:
//! for every path this CPU can run (`scalar` always, plus AVX2 or NEON
//! when detected), forcing that path must give bit-identical results
//! run to run, and the paths must agree with each other to numerical
//! tolerance — fused multiply-adds round once where the scalar
//! reference rounds twice, so cross-path equality is approximate by
//! design.
//!
//! Everything lives in ONE `#[test]` on purpose: `simd::apply` mutates
//! the process-wide dispatch state, and the default test harness runs
//! `#[test]` functions concurrently — a second test in this binary
//! could observe a half-forced configuration.

use linalg::simd::{self, SimdPath, SimdPolicy};
use linalg::Mat;
use stef::{AccumStrategy, MttkrpEngine, Stef, StefOptions};
use workloads::power_law_tensor;

/// One full MTTKRP sweep (all modes, both accumulation strategies),
/// flattened to bit patterns.
fn sweep_bits(accum: AccumStrategy) -> Vec<u64> {
    let t = power_law_tensor(&[24, 30, 18], 1_100, &[0.5, 0.5, 0.5], 17);
    let factors = stef::init_factors(t.dims(), 5, 29);
    let mut opts = StefOptions::new(5);
    opts.num_threads = 6;
    opts.accum = accum;
    let mut engine = Stef::prepare(&t, opts);
    engine
        .sweep_order()
        .into_iter()
        .flat_map(|m| {
            let out: Mat = engine.mttkrp(&factors, m);
            (0..out.rows())
                .flat_map(|i| out.row(i).iter().map(|v| v.to_bits()).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn every_available_path_is_deterministic_and_paths_agree() {
    let detected = simd::detect();
    let available: Vec<SimdPath> = SimdPath::ALL
        .iter()
        .copied()
        .filter(|p| p.available())
        .collect();
    assert!(available.contains(&SimdPath::Scalar));
    assert!(available.contains(&detected));

    let mut per_path: Vec<(SimdPath, Vec<u64>, Vec<u64>)> = Vec::new();
    for &path in &available {
        simd::apply(SimdPolicy::Force(path));
        assert_eq!(simd::active(), path, "force did not stick");
        let (p1, p2) = (sweep_bits(AccumStrategy::Privatized), sweep_bits(AccumStrategy::Privatized));
        let (a1, a2) = (sweep_bits(AccumStrategy::Atomic), sweep_bits(AccumStrategy::Atomic));
        // Run-to-run: bit-identical under a fixed forced path. The
        // fan-out on a multi-worker pool commits atomic rows in
        // scheduling order, so the atomic claim holds on serial
        // executors only.
        assert_eq!(p1, p2, "privatized not reproducible under {path:?}");
        if stef::runtime::global().is_serial() {
            assert_eq!(a1, a2, "atomic not reproducible under {path:?}");
        }
        per_path.push((path, p1, a1));
    }
    simd::apply(SimdPolicy::Auto);
    assert_eq!(simd::active(), detected, "Auto must restore detection");

    // Cross-path: all variants compute the same sweep to tolerance.
    let (_, ref_priv, ref_atomic) = &per_path[0];
    for (path, p, a) in &per_path[1..] {
        for (bits, rbits, what) in [(p, ref_priv, "privatized"), (a, ref_atomic, "atomic")] {
            assert_eq!(bits.len(), rbits.len());
            for (&x, &y) in bits.iter().zip(rbits.iter()) {
                let (fx, fy) = (f64::from_bits(x), f64::from_bits(y));
                let tol = 1e-9 * fy.abs().max(1.0);
                assert!(
                    (fx - fy).abs() <= tol,
                    "{what} sweep diverged between {path:?} and scalar: {fx} vs {fy}"
                );
            }
        }
    }
}
