//! Property-based tests: random sparse tensors, random configurations,
//! random factors — STeF's kernels must always agree with the COO
//! reference, CSF round trips must be lossless, the scheduler must cover
//! every leaf exactly once, and Algorithm 9 must match brute force.

use linalg::{assert_mat_approx_eq, Mat};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use sptensor::{build_csf, count_fibers_if_last_two_swapped, CooTensor};
use stef::{MemoPolicy, MttkrpEngine, Stef, StefOptions};

/// Strategy: a random small tensor with 2–4 modes.
fn arb_tensor() -> impl Strategy<Value = CooTensor> {
    (2usize..=4)
        .prop_flat_map(|d| {
            (
                pvec(2usize..=9, d..=d),
                pvec(any::<u32>(), 1..=120),
                pvec(-4i32..=4, 1..=120),
            )
        })
        .prop_map(|(dims, coords, vals)| {
            let mut t = CooTensor::new(dims.clone());
            let n = coords.len().min(vals.len());
            let mut coord = vec![0u32; dims.len()];
            for e in 0..n {
                let mut x = coords[e] as u64 | 1;
                for (c, &dim) in coord.iter_mut().zip(&dims) {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    *c = ((x >> 33) % dim as u64) as u32;
                }
                // Avoid exact zeros so dedup keeps entries meaningful.
                t.push(&coord, vals[e] as f64 + 0.5);
            }
            t.sort_dedup();
            t
        })
        .prop_filter("need at least one nnz", |t| t.nnz() > 0)
}

fn factors_for(t: &CooTensor, rank: usize, seed: u64) -> Vec<Mat> {
    let mut x = seed | 1;
    t.dims()
        .iter()
        .map(|&n| {
            Mat::from_fn(n, rank, |_, _| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 35) % 1000) as f64 / 500.0 - 1.0
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stef_matches_reference_on_random_tensors(
        t in arb_tensor(),
        rank in 1usize..=5,
        nthreads in 1usize..=7,
        seed in any::<u64>(),
    ) {
        let mut opts = StefOptions::new(rank);
        opts.num_threads = nthreads;
        let mut engine = Stef::prepare(&t, opts);
        let factors = factors_for(&t, rank, seed);
        for mode in engine.sweep_order() {
            let got = engine.mttkrp(&factors, mode);
            let expect = t.mttkrp_reference(&factors, mode);
            assert_mat_approx_eq(&got, &expect, 1e-9);
        }
    }

    #[test]
    fn save_all_and_save_none_agree(
        t in arb_tensor(),
        nthreads in 1usize..=5,
        seed in any::<u64>(),
    ) {
        let rank = 3;
        let factors = factors_for(&t, rank, seed);
        let mut results: Vec<Vec<Mat>> = Vec::new();
        for memo in [MemoPolicy::SaveAll, MemoPolicy::SaveNone] {
            let mut opts = StefOptions::new(rank);
            opts.num_threads = nthreads;
            opts.memo = memo;
            let mut engine = Stef::prepare(&t, opts);
            let sweep = engine.sweep_order();
            results.push(sweep.into_iter().map(|m| engine.mttkrp(&factors, m)).collect());
        }
        for (a, b) in results[0].iter().zip(&results[1]) {
            assert_mat_approx_eq(a, b, 1e-9);
        }
    }

    #[test]
    fn csf_round_trips_on_random_orders(t in arb_tensor(), perm_seed in any::<u64>()) {
        let d = t.ndim();
        // Derive a permutation from the seed.
        let mut order: Vec<usize> = (0..d).collect();
        let mut x = perm_seed | 1;
        for i in (1..d).rev() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, ((x >> 33) % (i as u64 + 1)) as usize);
        }
        let csf = build_csf(&t, &order);
        csf.validate();
        prop_assert_eq!(csf.nnz(), t.nnz());
        let mut back = csf.to_coo(t.dims());
        back.sort_dedup();
        prop_assert_eq!(back.nnz(), t.nnz());
        for e in 0..t.nnz() {
            prop_assert_eq!(back.coord(e), t.coord(e));
            prop_assert!((back.values()[e] - t.values()[e]).abs() < 1e-12);
        }
    }

    #[test]
    fn algorithm9_matches_brute_force(t in arb_tensor()) {
        let d = t.ndim();
        let order: Vec<usize> = (0..d).collect();
        let csf = build_csf(&t, &order);
        let fast = count_fibers_if_last_two_swapped(&csf);
        let brute = sptensor::swapcount::count_fibers_swapped_reference(&t, &order);
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn schedule_leaf_counts_are_balanced(t in arb_tensor(), nthreads in 1usize..=9) {
        let order: Vec<usize> = (0..t.ndim()).collect();
        let csf = build_csf(&t, &order);
        let sched = stef::Schedule::nnz_balanced(&csf, nthreads);
        // Leaf totals must partition nnz with ±1 balance.
        let mut total = 0usize;
        let mut max = 0usize;
        let mut min = usize::MAX;
        for th in 0..nthreads {
            let n = sched.nodes_at(th, csf.ndim() - 1);
            total += n;
            max = max.max(n);
            min = min.min(n);
        }
        prop_assert_eq!(total, csf.nnz());
        prop_assert!(max - min <= 1, "leaf counts range {min}..{max}");
    }

    #[test]
    fn mttkrp_is_linear_in_the_tensor(t in arb_tensor(), seed in any::<u64>()) {
        // MTTKRP(2T) == 2 · MTTKRP(T): catches any accidental value
        // mangling in format construction.
        let rank = 2;
        let factors = factors_for(&t, rank, seed);
        let mut doubled = CooTensor::new(t.dims().to_vec());
        for e in 0..t.nnz() {
            doubled.push(&t.coord(e), 2.0 * t.values()[e]);
        }
        let mut e1 = Stef::prepare(&t, StefOptions::new(rank));
        let mut e2 = Stef::prepare(&doubled, StefOptions::new(rank));
        for mode in e1.sweep_order() {
            let a = e1.mttkrp(&factors, mode);
            let mut b = e2.mttkrp(&factors, mode);
            b.scale(0.5);
            assert_mat_approx_eq(&a, &b, 1e-9);
        }
    }
}
