//! Fault-injection harness: the CPD driver must survive injected
//! numerical faults (NaN/Inf in MTTKRP outputs, corrupted memoized
//! partials, truncated checkpoint files) by recovering or failing with a
//! typed error — never by panicking — and recovered runs must reach the
//! fit of an unfaulted reference run.

use linalg::Mat;
use std::time::Duration;
use stef::{
    cpd_als, CancelToken, Checkpoint, CheckpointError, CheckpointPolicy, CpdOptions,
    DegradationEvent, Fault, FaultyEngine, MemoPolicy, MttkrpEngine, Stef, StefError, StefOptions,
    Workspace,
};
use workloads::power_law_tensor;

fn test_tensor() -> sptensor::CooTensor {
    power_law_tensor(&[40, 35, 30], 3_000, &[0.6, 0.3, 0.1], 17)
}

fn memoizing_options(rank: usize) -> StefOptions {
    // Force memoization so the corrupt-partials path is actually live.
    let mut o = StefOptions::new(rank);
    o.memo = MemoPolicy::SaveAll;
    o
}

fn base_opts(rank: usize) -> CpdOptions {
    CpdOptions {
        max_iters: 8,
        tol: 0.0,
        seed: 21,
        ..CpdOptions::new(rank)
    }
}

#[test]
fn nan_in_mttkrp_output_recovers_to_reference_fit() {
    let t = test_tensor();
    let opts = base_opts(4);

    let mut clean = Stef::prepare(&t, memoizing_options(4));
    let reference = cpd_als(&mut clean, &opts).expect("clean run");

    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let stef = Stef::prepare(&t, memoizing_options(4));
        let mut faulty = FaultyEngine::new(
            stef,
            vec![Fault::MttkrpOutputOnce {
                at: 5,
                row: 2,
                col: 1,
                value: bad,
            }],
        )
        .with_clear_on_degrade();
        let result = cpd_als(&mut faulty, &opts).expect("recovered run");
        assert!(
            result.recovery.engine_fallbacks >= 1,
            "fallback rung should fire for {bad}: {:?}",
            result.recovery
        );
        assert!(
            (result.final_fit() - reference.final_fit()).abs() < 1e-6,
            "recovered fit {} vs reference {} (injected {bad})",
            result.final_fit(),
            reference.final_fit()
        );
    }
}

/// Wraps a concrete STeF engine and silently poisons its memoized
/// partials `P^(i)` after the `corrupt_after`-th MTTKRP call — the
/// in-memory-corruption scenario (bad DIMM, racing writer).
struct PartialsCorruptor {
    inner: Stef,
    corrupt_after: usize,
    calls: usize,
    fired: bool,
}

impl MttkrpEngine for PartialsCorruptor {
    fn dims(&self) -> &[usize] {
        self.inner.dims()
    }
    fn name(&self) -> String {
        "partials-corruptor".into()
    }
    fn sweep_order(&self) -> Vec<usize> {
        self.inner.sweep_order()
    }
    fn norm_sq(&self) -> f64 {
        self.inner.norm_sq()
    }
    fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
        let out = self.inner.mttkrp(factors, mode);
        self.calls += 1;
        if !self.fired && self.calls == self.corrupt_after {
            self.inner.corrupt_partials_for_test(f64::NAN);
            self.fired = true;
        }
        out
    }
    fn degrade_to_unmemoized(&mut self) -> bool {
        self.inner.degrade_to_unmemoized()
    }
}

#[test]
fn corrupted_memoized_partials_recover_to_reference_fit() {
    let t = test_tensor();
    let opts = base_opts(3);

    let mut clean = Stef::prepare(&t, memoizing_options(3));
    let reference = cpd_als(&mut clean, &opts).expect("clean run");

    // Poison P^(i) right after the root-mode pass of iteration 2 wrote
    // them; the next non-root mode consumes the poisoned rows.
    let mut engine = PartialsCorruptor {
        inner: Stef::prepare(&t, memoizing_options(3)),
        corrupt_after: 4,
        calls: 0,
        fired: false,
    };
    let result = cpd_als(&mut engine, &opts).expect("recovered run");
    assert!(engine.fired, "fault never fired");
    assert!(
        engine.inner.memo_disabled(),
        "recovery should have disabled memoization"
    );
    assert!(
        result.recovery.engine_fallbacks >= 1,
        "{:?}",
        result.recovery
    );
    assert!(
        (result.final_fit() - reference.final_fit()).abs() < 1e-6,
        "recovered fit {} vs reference {}",
        result.final_fit(),
        reference.final_fit()
    );
}

#[test]
fn truncated_checkpoints_fail_typed_at_every_cut_point() {
    let dir = std::env::temp_dir().join("stef-fault-truncate");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ckpt");

    let t = test_tensor();
    let mut opts = base_opts(3);
    opts.max_iters = 4;
    opts.checkpoint = Some(CheckpointPolicy::new(&path, 2));
    let mut engine = Stef::prepare(&t, memoizing_options(3));
    let result = cpd_als(&mut engine, &opts).expect("checkpointed run");
    assert_eq!(result.checkpoints_written, 2);

    let bytes = std::fs::read(&path).unwrap();
    // A mid-write crash can leave any prefix; every prefix must load as
    // a typed Corrupt error, never a panic or a silently wrong state.
    for frac in [1, 3, 7, 9] {
        let cut = bytes.len() * frac / 10;
        let truncated = dir.join("truncated.ckpt");
        std::fs::write(&truncated, &bytes[..cut]).unwrap();
        match Checkpoint::load(&truncated) {
            Err(CheckpointError::Corrupt { .. }) => {}
            other => panic!("cut at {cut}/{}: expected Corrupt, got {other:?}", bytes.len()),
        }
    }
    // The intact file still loads.
    assert!(Checkpoint::load(&path).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_with_poisoned_state_is_rejected_on_resume() {
    let t = test_tensor();
    let mut engine = Stef::prepare(&t, memoizing_options(3));
    let dir = std::env::temp_dir().join("stef-fault-poisoned-resume");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ckpt");
    let mut opts = base_opts(3);
    opts.max_iters = 2;
    opts.checkpoint = Some(CheckpointPolicy::new(&path, 2));
    cpd_als(&mut engine, &opts).expect("checkpointed run");

    let mut cp = Checkpoint::load(&path).expect("load");
    cp.factors[0][(0, 0)] = f64::NAN;
    let mut resume_opts = base_opts(3);
    resume_opts.resume = Some(cp);
    let mut engine2 = Stef::prepare(&t, memoizing_options(3));
    match cpd_als(&mut engine2, &resume_opts) {
        Err(StefError::Checkpoint(CheckpointError::Corrupt { .. })) => {}
        other => panic!("expected Corrupt on poisoned resume state, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_and_resumed_run_matches_uninterrupted_fit() {
    let dir = std::env::temp_dir().join("stef-fault-resume");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ckpt");

    let t = test_tensor();
    let opts = base_opts(4); // 8 iterations

    // The uninterrupted run.
    let mut full_engine = Stef::prepare(&t, memoizing_options(4));
    let full = cpd_als(&mut full_engine, &opts).expect("full run");

    // "Kill" at iteration 5 (last checkpoint lands at 4), then resume in
    // a brand-new process image (fresh engine, fresh driver state).
    let mut opts_killed = opts.clone();
    opts_killed.max_iters = 5;
    opts_killed.checkpoint = Some(CheckpointPolicy::new(&path, 2));
    let mut killed_engine = Stef::prepare(&t, memoizing_options(4));
    cpd_als(&mut killed_engine, &opts_killed).expect("killed run");

    let cp = Checkpoint::load(&path).expect("reload checkpoint");
    assert_eq!(cp.iteration, 4);
    let mut opts_resumed = opts.clone();
    opts_resumed.resume = Some(cp);
    let mut resumed_engine = Stef::prepare(&t, memoizing_options(4));
    let resumed = cpd_als(&mut resumed_engine, &opts_resumed).expect("resumed run");

    assert_eq!(resumed.resumed_from, Some(4));
    assert_eq!(resumed.fits.len(), full.fits.len());
    for (i, (a, b)) in resumed.fits.iter().zip(&full.fits).enumerate() {
        assert!(
            (a - b).abs() < 1e-8,
            "iteration {i}: resumed fit {a} vs uninterrupted {b}"
        );
    }
    assert!(
        (resumed.final_fit() - full.final_fit()).abs() < 1e-8,
        "final fits diverged: {} vs {}",
        resumed.final_fit(),
        full.final_fit()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_worker_panic_is_typed_and_the_engine_survives() {
    let t = test_tensor();
    let opts = base_opts(3);

    let mut clean = Stef::prepare(&t, memoizing_options(3));
    let reference = cpd_als(&mut clean, &opts).expect("clean run");

    // The panic is dispatched on a clone of the engine's own executor,
    // so it lands in the very pool the MTTKRP kernels run on.
    let stef = Stef::prepare(&t, memoizing_options(3));
    let exec = stef.executor().clone();
    let mut faulty = FaultyEngine::new(stef, vec![Fault::WorkerPanicOnce { at: 2, thread: 1 }])
        .with_executor(exec);
    match cpd_als(&mut faulty, &opts) {
        Err(StefError::WorkerPanic {
            iteration: 1,
            mode: Some(_),
            message,
        }) => assert!(message.contains("injected worker panic"), "{message}"),
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    assert_eq!(faulty.injected(), 1);

    // The pool healed: the very same engine completes a clean CPD run
    // and reaches the reference fit.
    let result = cpd_als(&mut faulty, &opts).expect("post-panic run");
    assert!(
        (result.final_fit() - reference.final_fit()).abs() < 1e-8,
        "post-panic fit {} vs reference {}",
        result.final_fit(),
        reference.final_fit()
    );
}

#[test]
fn deadline_fuse_cancels_with_checkpoint_and_resume_matches_uninterrupted() {
    let dir = std::env::temp_dir().join("stef-fault-deadline-fuse");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ckpt");

    let t = test_tensor();
    let opts = base_opts(4); // 8 iterations

    let mut full_engine = Stef::prepare(&t, memoizing_options(4));
    let full = cpd_als(&mut full_engine, &opts).expect("full run");

    // Burn the fuse on call 9 = iteration 4's first MTTKRP; the driver
    // observes the expired deadline after that mode update and exits
    // through the cancel path, writing the end-of-iteration-3 snapshot.
    let token = CancelToken::new();
    let mut opts_fused = opts.clone();
    opts_fused.cancel = Some(token.clone());
    // `every` beyond max_iters: only the cancel path may write the file.
    opts_fused.checkpoint = Some(CheckpointPolicy::new(&path, 100));
    let stef = Stef::prepare(&t, memoizing_options(4));
    let mut fused = FaultyEngine::new(
        stef,
        vec![Fault::DeadlineFuseOnce {
            at: 9,
            fuse: Duration::ZERO,
        }],
    )
    .with_cancel(token.clone());
    match cpd_als(&mut fused, &opts_fused) {
        Err(StefError::Cancelled {
            iteration: 4,
            deadline: true,
            checkpoint_iteration: Some(3),
        }) => {}
        other => panic!("expected Cancelled at iteration 4 with checkpoint, got {other:?}"),
    }
    assert!(token.is_cancelled(), "expiry must promote the sticky flag");

    // Resume from the cancel-time checkpoint in a fresh process image;
    // the completed run must match the uninterrupted one.
    let cp = Checkpoint::load(&path).expect("cancel-time checkpoint loads");
    assert_eq!(cp.iteration, 3);
    let mut opts_resumed = opts.clone();
    opts_resumed.resume = Some(cp);
    let mut resumed_engine = Stef::prepare(&t, memoizing_options(4));
    let resumed = cpd_als(&mut resumed_engine, &opts_resumed).expect("resumed run");
    assert_eq!(resumed.resumed_from, Some(3));
    assert_eq!(resumed.fits.len(), full.fits.len());
    for (i, (a, b)) in resumed.fits.iter().zip(&full.fits).enumerate() {
        assert!(
            (a - b).abs() < 1e-8,
            "iteration {i}: resumed fit {a} vs uninterrupted {b}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cancellation_lands_cleanly_in_every_mttkrp_mode() {
    let t = test_tensor();
    // Fuse calls 3, 4, 5 = iteration 2's three mode updates, so each
    // sweep position (start, mid-sweep, end) observes the cancel.
    for mode_pos in 0..3usize {
        let token = CancelToken::new();
        let mut opts = base_opts(3);
        opts.cancel = Some(token.clone());
        let stef = Stef::prepare(&t, memoizing_options(3));
        let mut fused = FaultyEngine::new(
            stef,
            vec![Fault::DeadlineFuseOnce {
                at: 3 + mode_pos,
                fuse: Duration::ZERO,
            }],
        )
        .with_cancel(token.clone());
        match cpd_als(&mut fused, &opts) {
            Err(StefError::Cancelled {
                iteration: 2,
                deadline: true,
                // No checkpoint policy configured: nothing to write.
                checkpoint_iteration: None,
            }) => {}
            other => panic!("sweep position {mode_pos}: expected Cancelled, got {other:?}"),
        }
        assert_eq!(fused.calls(), 4 + mode_pos, "sweep position {mode_pos}");
    }
}

#[test]
fn memory_budget_degrades_but_matches_unconstrained_fits() {
    let t = test_tensor();
    let opts = base_opts(3);
    // Single-threaded so privatized->atomic degradation cannot reorder
    // floating-point accumulation between the two runs.
    let mut unconstrained = memoizing_options(3);
    unconstrained.num_threads = 1;
    let mut clean = Stef::prepare(&t, unconstrained.clone());
    let reference = cpd_als(&mut clean, &opts).expect("unconstrained run");
    assert!(clean.degradations().is_empty());

    // A budget barely above the fixed workspace floor forces the fitter
    // to shed every memoized partial (and any privatized pool), but the
    // minimal plan still fits, so preparation must succeed.
    let mut constrained = unconstrained.clone();
    let floor = Workspace::fixed_bytes(t.ndim(), constrained.rank, constrained.threads());
    constrained.memory_budget = floor + 64;
    let mut engine = Stef::try_prepare(&t, constrained).expect("budget above floor is feasible");
    let events = engine.degradations();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, DegradationEvent::MemoDropped { .. })),
        "expected memoized partials to be dropped: {events:?}"
    );

    let result = cpd_als(&mut engine, &opts).expect("degraded run");
    assert_eq!(result.degradations.len(), events.len());
    assert_eq!(result.fits.len(), reference.fits.len());
    for (i, (a, b)) in result.fits.iter().zip(&reference.fits).enumerate() {
        assert!(
            (a - b).abs() < 1e-8,
            "iteration {i}: degraded fit {a} vs unconstrained {b}"
        );
    }
}

#[test]
fn infeasible_budget_is_a_typed_error() {
    let t = test_tensor();
    let mut o = memoizing_options(3);
    o.memory_budget = 1;
    match Stef::try_prepare(&t, o) {
        Err(StefError::BudgetExceeded { required, budget: 1 }) => {
            assert!(required > 1, "required {required}");
        }
        other => panic!(
            "expected BudgetExceeded, got {:?}",
            other.as_ref().map(|_| "engine").map_err(|e| e.to_string())
        ),
    }
}

#[test]
fn persistent_fault_yields_typed_error_and_counts_injections() {
    let t = test_tensor();
    let mut faulty = FaultyEngine::new(
        Stef::prepare(&t, memoizing_options(3)),
        vec![Fault::MttkrpOutputAlways {
            from: 0,
            row: 0,
            col: 0,
            value: f64::NAN,
        }],
    );
    match cpd_als(&mut faulty, &base_opts(3)) {
        Err(StefError::NonFinite {
            iteration: 1,
            mode: Some(_),
            ..
        }) => {}
        other => panic!("expected NonFinite, got {other:?}"),
    }
    assert!(faulty.injected() >= 2, "retry paths should also be faulted");
}
