//! Fault-injection harness: the CPD driver must survive injected
//! numerical faults (NaN/Inf in MTTKRP outputs, corrupted memoized
//! partials, truncated checkpoint files) by recovering or failing with a
//! typed error — never by panicking — and recovered runs must reach the
//! fit of an unfaulted reference run.

use linalg::Mat;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use stef::{
    cpd_als, scan_journal, CancelToken, Checkpoint, CheckpointError, CheckpointPolicy, CpdOptions,
    DegradationEvent, EngineFactory, Fault, FaultyEngine, JobSpec, JobStatus, JournalRecord,
    MemoPolicy, MttkrpEngine, Stef, StefError, StefOptions, Supervisor, SupervisorConfig,
    TensorLoader, Workspace,
};
use workloads::power_law_tensor;

fn test_tensor() -> sptensor::CooTensor {
    power_law_tensor(&[40, 35, 30], 3_000, &[0.6, 0.3, 0.1], 17)
}

fn memoizing_options(rank: usize) -> StefOptions {
    // Force memoization so the corrupt-partials path is actually live.
    let mut o = StefOptions::new(rank);
    o.memo = MemoPolicy::SaveAll;
    o
}

fn base_opts(rank: usize) -> CpdOptions {
    CpdOptions {
        max_iters: 8,
        tol: 0.0,
        seed: 21,
        ..CpdOptions::new(rank)
    }
}

#[test]
fn nan_in_mttkrp_output_recovers_to_reference_fit() {
    let t = test_tensor();
    let opts = base_opts(4);

    let mut clean = Stef::prepare(&t, memoizing_options(4));
    let reference = cpd_als(&mut clean, &opts).expect("clean run");

    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let stef = Stef::prepare(&t, memoizing_options(4));
        let mut faulty = FaultyEngine::new(
            stef,
            vec![Fault::MttkrpOutputOnce {
                at: 5,
                row: 2,
                col: 1,
                value: bad,
            }],
        )
        .with_clear_on_degrade();
        let result = cpd_als(&mut faulty, &opts).expect("recovered run");
        assert!(
            result.recovery.engine_fallbacks >= 1,
            "fallback rung should fire for {bad}: {:?}",
            result.recovery
        );
        assert!(
            (result.final_fit() - reference.final_fit()).abs() < 1e-6,
            "recovered fit {} vs reference {} (injected {bad})",
            result.final_fit(),
            reference.final_fit()
        );
    }
}

/// Wraps a concrete STeF engine and silently poisons its memoized
/// partials `P^(i)` after the `corrupt_after`-th MTTKRP call — the
/// in-memory-corruption scenario (bad DIMM, racing writer).
struct PartialsCorruptor {
    inner: Stef,
    corrupt_after: usize,
    calls: usize,
    fired: bool,
}

impl MttkrpEngine for PartialsCorruptor {
    fn dims(&self) -> &[usize] {
        self.inner.dims()
    }
    fn name(&self) -> String {
        "partials-corruptor".into()
    }
    fn sweep_order(&self) -> Vec<usize> {
        self.inner.sweep_order()
    }
    fn norm_sq(&self) -> f64 {
        self.inner.norm_sq()
    }
    fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
        let out = self.inner.mttkrp(factors, mode);
        self.calls += 1;
        if !self.fired && self.calls == self.corrupt_after {
            self.inner.corrupt_partials_for_test(f64::NAN);
            self.fired = true;
        }
        out
    }
    fn degrade_to_unmemoized(&mut self) -> bool {
        self.inner.degrade_to_unmemoized()
    }
}

#[test]
fn corrupted_memoized_partials_recover_to_reference_fit() {
    let t = test_tensor();
    let opts = base_opts(3);

    let mut clean = Stef::prepare(&t, memoizing_options(3));
    let reference = cpd_als(&mut clean, &opts).expect("clean run");

    // Poison P^(i) right after the root-mode pass of iteration 2 wrote
    // them; the next non-root mode consumes the poisoned rows.
    let mut engine = PartialsCorruptor {
        inner: Stef::prepare(&t, memoizing_options(3)),
        corrupt_after: 4,
        calls: 0,
        fired: false,
    };
    let result = cpd_als(&mut engine, &opts).expect("recovered run");
    assert!(engine.fired, "fault never fired");
    assert!(
        engine.inner.memo_disabled(),
        "recovery should have disabled memoization"
    );
    assert!(
        result.recovery.engine_fallbacks >= 1,
        "{:?}",
        result.recovery
    );
    assert!(
        (result.final_fit() - reference.final_fit()).abs() < 1e-6,
        "recovered fit {} vs reference {}",
        result.final_fit(),
        reference.final_fit()
    );
}

#[test]
fn truncated_checkpoints_fail_typed_at_every_cut_point() {
    let dir = std::env::temp_dir().join("stef-fault-truncate");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ckpt");

    let t = test_tensor();
    let mut opts = base_opts(3);
    opts.max_iters = 4;
    opts.checkpoint = Some(CheckpointPolicy::new(&path, 2));
    let mut engine = Stef::prepare(&t, memoizing_options(3));
    let result = cpd_als(&mut engine, &opts).expect("checkpointed run");
    assert_eq!(result.checkpoints_written, 2);

    let bytes = std::fs::read(&path).unwrap();
    // A mid-write crash can leave any prefix; every prefix must load as
    // a typed Corrupt error, never a panic or a silently wrong state.
    for frac in [1, 3, 7, 9] {
        let cut = bytes.len() * frac / 10;
        let truncated = dir.join("truncated.ckpt");
        std::fs::write(&truncated, &bytes[..cut]).unwrap();
        match Checkpoint::load(&truncated) {
            Err(CheckpointError::Corrupt { .. }) => {}
            other => panic!("cut at {cut}/{}: expected Corrupt, got {other:?}", bytes.len()),
        }
    }
    // The intact file still loads.
    assert!(Checkpoint::load(&path).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_with_poisoned_state_is_rejected_on_resume() {
    let t = test_tensor();
    let mut engine = Stef::prepare(&t, memoizing_options(3));
    let dir = std::env::temp_dir().join("stef-fault-poisoned-resume");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ckpt");
    let mut opts = base_opts(3);
    opts.max_iters = 2;
    opts.checkpoint = Some(CheckpointPolicy::new(&path, 2));
    cpd_als(&mut engine, &opts).expect("checkpointed run");

    let mut cp = Checkpoint::load(&path).expect("load");
    cp.factors[0][(0, 0)] = f64::NAN;
    let mut resume_opts = base_opts(3);
    resume_opts.resume = Some(cp);
    let mut engine2 = Stef::prepare(&t, memoizing_options(3));
    match cpd_als(&mut engine2, &resume_opts) {
        Err(StefError::Checkpoint(CheckpointError::Corrupt { .. })) => {}
        other => panic!("expected Corrupt on poisoned resume state, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_and_resumed_run_matches_uninterrupted_fit() {
    let dir = std::env::temp_dir().join("stef-fault-resume");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ckpt");

    let t = test_tensor();
    let opts = base_opts(4); // 8 iterations

    // The uninterrupted run.
    let mut full_engine = Stef::prepare(&t, memoizing_options(4));
    let full = cpd_als(&mut full_engine, &opts).expect("full run");

    // "Kill" at iteration 5 (last checkpoint lands at 4), then resume in
    // a brand-new process image (fresh engine, fresh driver state).
    let mut opts_killed = opts.clone();
    opts_killed.max_iters = 5;
    opts_killed.checkpoint = Some(CheckpointPolicy::new(&path, 2));
    let mut killed_engine = Stef::prepare(&t, memoizing_options(4));
    cpd_als(&mut killed_engine, &opts_killed).expect("killed run");

    let cp = Checkpoint::load(&path).expect("reload checkpoint");
    assert_eq!(cp.iteration, 4);
    let mut opts_resumed = opts.clone();
    opts_resumed.resume = Some(cp);
    let mut resumed_engine = Stef::prepare(&t, memoizing_options(4));
    let resumed = cpd_als(&mut resumed_engine, &opts_resumed).expect("resumed run");

    assert_eq!(resumed.resumed_from, Some(4));
    assert_eq!(resumed.fits.len(), full.fits.len());
    for (i, (a, b)) in resumed.fits.iter().zip(&full.fits).enumerate() {
        assert!(
            (a - b).abs() < 1e-8,
            "iteration {i}: resumed fit {a} vs uninterrupted {b}"
        );
    }
    assert!(
        (resumed.final_fit() - full.final_fit()).abs() < 1e-8,
        "final fits diverged: {} vs {}",
        resumed.final_fit(),
        full.final_fit()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_worker_panic_is_typed_and_the_engine_survives() {
    let t = test_tensor();
    let opts = base_opts(3);

    let mut clean = Stef::prepare(&t, memoizing_options(3));
    let reference = cpd_als(&mut clean, &opts).expect("clean run");

    // The panic is dispatched on a clone of the engine's own executor,
    // so it lands in the very pool the MTTKRP kernels run on.
    let stef = Stef::prepare(&t, memoizing_options(3));
    let exec = stef.executor().clone();
    let mut faulty = FaultyEngine::new(stef, vec![Fault::WorkerPanicOnce { at: 2, thread: 1 }])
        .with_executor(exec);
    match cpd_als(&mut faulty, &opts) {
        Err(StefError::WorkerPanic {
            iteration: 1,
            mode: Some(_),
            message,
        }) => assert!(message.contains("injected worker panic"), "{message}"),
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    assert_eq!(faulty.injected(), 1);

    // The pool healed: the very same engine completes a clean CPD run
    // and reaches the reference fit.
    let result = cpd_als(&mut faulty, &opts).expect("post-panic run");
    assert!(
        (result.final_fit() - reference.final_fit()).abs() < 1e-8,
        "post-panic fit {} vs reference {}",
        result.final_fit(),
        reference.final_fit()
    );
}

#[test]
fn deadline_fuse_cancels_with_checkpoint_and_resume_matches_uninterrupted() {
    let dir = std::env::temp_dir().join("stef-fault-deadline-fuse");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ckpt");

    let t = test_tensor();
    let opts = base_opts(4); // 8 iterations

    let mut full_engine = Stef::prepare(&t, memoizing_options(4));
    let full = cpd_als(&mut full_engine, &opts).expect("full run");

    // Burn the fuse on call 9 = iteration 4's first MTTKRP; the driver
    // observes the expired deadline after that mode update and exits
    // through the cancel path, writing the end-of-iteration-3 snapshot.
    let token = CancelToken::new();
    let mut opts_fused = opts.clone();
    opts_fused.cancel = Some(token.clone());
    // `every` beyond max_iters: only the cancel path may write the file.
    opts_fused.checkpoint = Some(CheckpointPolicy::new(&path, 100));
    let stef = Stef::prepare(&t, memoizing_options(4));
    let mut fused = FaultyEngine::new(
        stef,
        vec![Fault::DeadlineFuseOnce {
            at: 9,
            fuse: Duration::ZERO,
        }],
    )
    .with_cancel(token.clone());
    match cpd_als(&mut fused, &opts_fused) {
        Err(StefError::Cancelled {
            iteration: 4,
            deadline: true,
            checkpoint_iteration: Some(3),
        }) => {}
        other => panic!("expected Cancelled at iteration 4 with checkpoint, got {other:?}"),
    }
    assert!(token.is_cancelled(), "expiry must promote the sticky flag");

    // Resume from the cancel-time checkpoint in a fresh process image;
    // the completed run must match the uninterrupted one.
    let cp = Checkpoint::load(&path).expect("cancel-time checkpoint loads");
    assert_eq!(cp.iteration, 3);
    let mut opts_resumed = opts.clone();
    opts_resumed.resume = Some(cp);
    let mut resumed_engine = Stef::prepare(&t, memoizing_options(4));
    let resumed = cpd_als(&mut resumed_engine, &opts_resumed).expect("resumed run");
    assert_eq!(resumed.resumed_from, Some(3));
    assert_eq!(resumed.fits.len(), full.fits.len());
    for (i, (a, b)) in resumed.fits.iter().zip(&full.fits).enumerate() {
        assert!(
            (a - b).abs() < 1e-8,
            "iteration {i}: resumed fit {a} vs uninterrupted {b}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cancellation_lands_cleanly_in_every_mttkrp_mode() {
    let t = test_tensor();
    // Fuse calls 3, 4, 5 = iteration 2's three mode updates, so each
    // sweep position (start, mid-sweep, end) observes the cancel.
    for mode_pos in 0..3usize {
        let token = CancelToken::new();
        let mut opts = base_opts(3);
        opts.cancel = Some(token.clone());
        let stef = Stef::prepare(&t, memoizing_options(3));
        let mut fused = FaultyEngine::new(
            stef,
            vec![Fault::DeadlineFuseOnce {
                at: 3 + mode_pos,
                fuse: Duration::ZERO,
            }],
        )
        .with_cancel(token.clone());
        match cpd_als(&mut fused, &opts) {
            Err(StefError::Cancelled {
                iteration: 2,
                deadline: true,
                // No checkpoint policy configured: nothing to write.
                checkpoint_iteration: None,
            }) => {}
            other => panic!("sweep position {mode_pos}: expected Cancelled, got {other:?}"),
        }
        assert_eq!(fused.calls(), 4 + mode_pos, "sweep position {mode_pos}");
    }
}

#[test]
fn memory_budget_degrades_but_matches_unconstrained_fits() {
    let t = test_tensor();
    let opts = base_opts(3);
    // Single-threaded so privatized->atomic degradation cannot reorder
    // floating-point accumulation between the two runs.
    let mut unconstrained = memoizing_options(3);
    unconstrained.num_threads = 1;
    let mut clean = Stef::prepare(&t, unconstrained.clone());
    let reference = cpd_als(&mut clean, &opts).expect("unconstrained run");
    assert!(clean.degradations().is_empty());

    // A budget barely above the fixed workspace floor forces the fitter
    // to shed every memoized partial (and any privatized pool), but the
    // minimal plan still fits, so preparation must succeed.
    let mut constrained = unconstrained.clone();
    let floor = Workspace::fixed_bytes(t.ndim(), constrained.rank, constrained.threads());
    constrained.memory_budget = floor + 64;
    let mut engine = Stef::try_prepare(&t, constrained).expect("budget above floor is feasible");
    let events = engine.degradations();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, DegradationEvent::MemoDropped { .. })),
        "expected memoized partials to be dropped: {events:?}"
    );

    let result = cpd_als(&mut engine, &opts).expect("degraded run");
    assert_eq!(result.degradations.len(), events.len());
    assert_eq!(result.fits.len(), reference.fits.len());
    for (i, (a, b)) in result.fits.iter().zip(&reference.fits).enumerate() {
        assert!(
            (a - b).abs() < 1e-8,
            "iteration {i}: degraded fit {a} vs unconstrained {b}"
        );
    }
}

#[test]
fn infeasible_budget_is_a_typed_error() {
    let t = test_tensor();
    let mut o = memoizing_options(3);
    o.memory_budget = 1;
    match Stef::try_prepare(&t, o) {
        Err(StefError::BudgetExceeded { required, budget: 1 }) => {
            assert!(required > 1, "required {required}");
        }
        other => panic!(
            "expected BudgetExceeded, got {:?}",
            other.as_ref().map(|_| "engine").map_err(|e| e.to_string())
        ),
    }
}

#[test]
fn persistent_fault_yields_typed_error_and_counts_injections() {
    let t = test_tensor();
    let mut faulty = FaultyEngine::new(
        Stef::prepare(&t, memoizing_options(3)),
        vec![Fault::MttkrpOutputAlways {
            from: 0,
            row: 0,
            col: 0,
            value: f64::NAN,
        }],
    );
    match cpd_als(&mut faulty, &base_opts(3)) {
        Err(StefError::NonFinite {
            iteration: 1,
            mode: Some(_),
            ..
        }) => {}
        other => panic!("expected NonFinite, got {other:?}"),
    }
    assert!(faulty.injected() >= 2, "retry paths should also be faulted");
}

// ---------------------------------------------------------------------
// Supervised batches (stef::supervisor) under fault injection
// ---------------------------------------------------------------------

fn batch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stef-fault-batch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn batch_cfg(dir: &Path) -> SupervisorConfig {
    let mut cfg = SupervisorConfig::new(dir.join("batch.journal"), dir.join("ckpts"));
    cfg.backoff_base = Duration::from_millis(1);
    cfg.backoff_cap = Duration::from_millis(2);
    cfg
}

fn batch_loader() -> TensorLoader {
    Arc::new(|_spec| Ok(test_tensor()))
}

/// Plain STeF factory matching `memoizing_options` + the job's token.
fn stef_factory() -> EngineFactory {
    Arc::new(|spec, tensor, token, _at| {
        let mut o = memoizing_options(spec.rank);
        o.cancel = Some(token.clone());
        Ok(Box::new(Stef::try_prepare(tensor, o)?) as Box<dyn MttkrpEngine>)
    })
}

/// Matches `base_opts(3)` so supervised results compare against plain
/// `cpd_als` trajectories.
fn batch_job() -> JobSpec {
    let mut spec = JobSpec::new("fault:test", 3);
    spec.max_iters = 8;
    spec.tol = 0.0;
    spec.seed = 21;
    spec
}

/// Cancels its own job token right before MTTKRP call `at` — the
/// in-process stand-in for a kill landing mid-sweep: the driver observes
/// the token at the next boundary, checkpoints, and reports the job
/// interrupted rather than failed.
struct CancelAt<E> {
    inner: E,
    token: CancelToken,
    at: usize,
    calls: usize,
}

impl<E: MttkrpEngine> MttkrpEngine for CancelAt<E> {
    fn dims(&self) -> &[usize] {
        self.inner.dims()
    }
    fn name(&self) -> String {
        self.inner.name()
    }
    fn sweep_order(&self) -> Vec<usize> {
        self.inner.sweep_order()
    }
    fn norm_sq(&self) -> f64 {
        self.inner.norm_sq()
    }
    fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
        if self.calls == self.at {
            self.token.cancel();
        }
        self.calls += 1;
        self.inner.mttkrp(factors, mode)
    }
    fn degrade_to_unmemoized(&mut self) -> bool {
        self.inner.degrade_to_unmemoized()
    }
    fn degradations(&self) -> Vec<DegradationEvent> {
        self.inner.degradations()
    }
}

#[test]
fn supervised_batch_interrupted_and_resumed_matches_uninterrupted() {
    // Reference: the same job run by a supervisor nothing happens to.
    let dir_clean = batch_dir("resume-clean");
    let sup = Supervisor::new(batch_cfg(&dir_clean), batch_loader(), stef_factory()).unwrap();
    let id = sup.submit(batch_job()).unwrap();
    let report = sup.run_all();
    assert_eq!(report.done(), 1, "{report:?}");
    let clean = sup.take_result(id).unwrap().unwrap();

    // Interrupted: the engine cancels its own token just before MTTKRP
    // call 13 (mid-iteration 5 of 8), after several checkpoints exist.
    let dir = batch_dir("resume-interrupted");
    let cfg = batch_cfg(&dir);
    let interrupting: EngineFactory = Arc::new(|spec, tensor, token, _at| {
        let mut o = memoizing_options(spec.rank);
        o.cancel = Some(token.clone());
        Ok(Box::new(CancelAt {
            inner: Stef::try_prepare(tensor, o)?,
            token: token.clone(),
            at: 13,
            calls: 0,
        }) as Box<dyn MttkrpEngine>)
    });
    let sup = Supervisor::new(cfg.clone(), batch_loader(), interrupting).unwrap();
    let id = sup.submit(batch_job()).unwrap();
    let report = sup.run_all();
    assert_eq!(report.interrupted(), 1, "{report:?}");
    assert_eq!(sup.status(id), Some(JobStatus::Interrupted));
    match report.exit_error() {
        Some(StefError::Cancelled { deadline: false, .. }) => {}
        other => panic!("expected resumable Cancelled, got {other:?}"),
    }
    drop(sup);

    // "New process": resume from the journal with a clean factory.
    let sup = Supervisor::resume(cfg, batch_loader(), stef_factory()).unwrap();
    assert_eq!(sup.status(id), Some(JobStatus::Queued), "re-queued on resume");
    let report = sup.run_all();
    assert_eq!(report.done(), 1, "{report:?}");
    let resumed = sup.take_result(id).unwrap().unwrap();
    assert!(resumed.resumed_from.is_some(), "must restart from a checkpoint");
    assert_eq!(resumed.iterations, clean.iterations);
    assert!(
        (resumed.final_fit() - clean.final_fit()).abs() < 1e-8,
        "resumed fit {} vs uninterrupted {}",
        resumed.final_fit(),
        clean.final_fit()
    );
    for (m, (a, b)) in resumed.factors.iter().zip(&clean.factors).enumerate() {
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= 1e-8, "factor {m} diverged: {x} vs {y}");
        }
    }

    let _ = std::fs::remove_dir_all(&dir_clean);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_journal_mid_record_is_corrupt_but_torn_tail_resumes() {
    let dir = batch_dir("journal-trunc");
    let cfg = batch_cfg(&dir);
    {
        let sup = Supervisor::new(cfg.clone(), batch_loader(), stef_factory()).unwrap();
        sup.submit(batch_job()).unwrap();
        let report = sup.run_all();
        assert_eq!(report.done(), 1, "{report:?}");
    }
    let journal = dir.join("batch.journal");
    let pristine = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = pristine.lines().collect();
    assert!(lines.len() >= 4, "expected header + several records");

    // Truncating a *middle* record cannot be a crash artifact (appends
    // only ever tear the tail), so it is data corruption: the scan and
    // any resume must refuse with a typed error.
    let mid = lines.len() / 2;
    let mut damaged: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
    let half = damaged[mid].len() / 2;
    damaged[mid].truncate(half);
    std::fs::write(&journal, format!("{}\n", damaged.join("\n"))).unwrap();
    match scan_journal(&journal) {
        Err(StefError::Checkpoint(CheckpointError::Corrupt { .. })) => {}
        other => panic!("scan of mid-file damage must be Corrupt, got {other:?}"),
    }
    match Supervisor::resume(cfg.clone(), batch_loader(), stef_factory()) {
        Err(StefError::Checkpoint(CheckpointError::Corrupt { .. })) => {}
        Err(other) => panic!("expected Corrupt, got {other:?}"),
        Ok(_) => panic!("resume must refuse a journal damaged mid-file"),
    }

    // A torn *final* line is exactly what a crash mid-append leaves
    // behind. Here the tear eats the Done record, so the job no longer
    // looks finished: resume re-queues it and runs it back to Done
    // (from its final checkpoint, at worst replaying one iteration).
    let last = lines.last().unwrap();
    let torn = format!(
        "{}\n{}",
        lines[..lines.len() - 1].join("\n"),
        &last[..last.len() - 9]
    );
    std::fs::write(&journal, torn).unwrap();
    let scan = scan_journal(&journal).unwrap();
    assert!(scan.torn_tail, "tail damage must be flagged, not fatal");
    let sup = Supervisor::resume(cfg.clone(), batch_loader(), stef_factory()).unwrap();
    assert_eq!(sup.status(0), Some(JobStatus::Queued));
    let report = sup.run_all();
    assert_eq!(report.done(), 1, "{report:?}");

    // The resume must have truncated the torn partial line before
    // appending: re-scanning the journal has to succeed with no torn
    // tail and the fresh Done record, or `--status` and any further
    // resume of this batch would fail forever on mid-file corruption.
    let scan = scan_journal(&journal).unwrap();
    assert!(!scan.torn_tail, "torn bytes must be gone after resume");
    assert!(
        scan.records
            .iter()
            .any(|r| matches!(r, JournalRecord::Done { id: 0, .. })),
        "{:?}",
        scan.records
    );
    // And a second resume of the now-finished batch parses cleanly:
    // the job replays as already terminal, nothing is re-queued.
    let sup = Supervisor::resume(cfg, batch_loader(), stef_factory()).unwrap();
    assert!(
        matches!(sup.status(0), Some(JobStatus::Done { .. })),
        "terminal status replayed, not re-queued"
    );
    let report = sup.run_all();
    assert_eq!(report.done(), 1, "{report:?}");
    assert!(report.exit_error().is_none(), "{report:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervised_transient_fault_consumes_exactly_one_retry() {
    // Reference run with no fault, for the fit comparison.
    let dir_clean = batch_dir("retry-clean");
    let sup = Supervisor::new(batch_cfg(&dir_clean), batch_loader(), stef_factory()).unwrap();
    let id = sup.submit(batch_job()).unwrap();
    assert_eq!(sup.run_all().done(), 1);
    let clean = sup.take_result(id).unwrap().unwrap();

    // Faulted run: attempt 1 dies with a retryable error at MTTKRP call
    // 7 (iteration 3); attempt 2 gets a clean engine and must resume
    // from attempt 1's checkpoints onto the identical trajectory.
    let dir = batch_dir("retry-transient");
    let faulted: EngineFactory = Arc::new(|spec, tensor, token, at| {
        let mut o = memoizing_options(spec.rank);
        o.cancel = Some(token.clone());
        let engine = Stef::try_prepare(tensor, o)?;
        let faults = if at.attempt == 1 {
            vec![Fault::TransientErrorOnce { at: 7 }]
        } else {
            Vec::new()
        };
        Ok(Box::new(FaultyEngine::new(engine, faults)) as Box<dyn MttkrpEngine>)
    });
    let sup = Supervisor::new(batch_cfg(&dir), batch_loader(), faulted).unwrap();
    let id = sup.submit(batch_job()).unwrap();
    let report = sup.run_all();
    assert_eq!(report.done(), 1, "{report:?}");
    match sup.status(id) {
        Some(JobStatus::Done { attempts, .. }) => assert_eq!(attempts, 2, "exactly one retry"),
        other => panic!("expected Done, got {other:?}"),
    }
    let result = sup.take_result(id).unwrap().unwrap();
    assert!(
        (result.final_fit() - clean.final_fit()).abs() < 1e-8,
        "retried fit {} vs clean {}",
        result.final_fit(),
        clean.final_fit()
    );

    // The journal must show the whole story: one Retrying record, two
    // Starteds, and a Done carrying attempts=2.
    let scan = scan_journal(&dir.join("batch.journal")).unwrap();
    assert!(!scan.torn_tail);
    let retrying = scan
        .records
        .iter()
        .filter(|r| matches!(r, JournalRecord::Retrying { .. }))
        .count();
    let started = scan
        .records
        .iter()
        .filter(|r| matches!(r, JournalRecord::Started { .. }))
        .count();
    assert_eq!(retrying, 1, "{:?}", scan.records);
    assert_eq!(started, 2, "{:?}", scan.records);
    assert!(
        scan.records
            .iter()
            .any(|r| matches!(r, JournalRecord::Done { attempts: 2, .. })),
        "{:?}",
        scan.records
    );

    let _ = std::fs::remove_dir_all(&dir_clean);
    let _ = std::fs::remove_dir_all(&dir);
}
