//! The data-movement model's decisions on the suite analogues must
//! reproduce the paper's qualitative behaviour (Table II and §IV-A), and
//! the suite itself must keep the structural properties the evaluation
//! depends on.

use sptensor::{build_csf, sort_modes_by_length, TensorStats};
use stef::{MemoPolicy, Stef, StefOptions};
use workloads::{suite_tensor, SuiteScale};

fn prepared(name: &str, rank: usize) -> Stef {
    let t = suite_tensor(name, SuiteScale::Tiny).unwrap();
    Stef::prepare(&t, StefOptions::new(rank))
}

#[test]
fn freebase_like_tensors_are_not_memoized() {
    // Paper Table II: freebase_music / freebase_sampled have ratio 0.00 —
    // nearly-unique (i,j) pairs make partials as large as the tensor.
    for name in ["freebase_music", "freebase_sampled"] {
        let engine = prepared(name, 32);
        assert_eq!(
            engine.partial_bytes(),
            0,
            "{name}: the model should decline to memoize, chose {:?}",
            engine.plan().save
        );
    }
}

#[test]
fn some_suite_tensors_are_memoized() {
    // The model must not degenerate into "never memoize": at least a few
    // suite tensors (the clustered / long-fiber ones) should memoize.
    let memoized = workloads::paper_suite()
        .iter()
        .filter(|spec| {
            let t = spec.generate(SuiteScale::Tiny);
            let engine = Stef::prepare(&t, StefOptions::new(32));
            engine.partial_bytes() > 0
        })
        .count();
    assert!(memoized >= 2, "only {memoized} tensors memoized");
}

#[test]
fn partial_ratio_is_bounded_like_table2() {
    // Paper: the model-chosen ratio maxes out around 2.34; allow slack
    // for the scaled analogues but catch runaway memoization.
    for spec in workloads::paper_suite() {
        let t = spec.generate(SuiteScale::Tiny);
        let engine = Stef::prepare(&t, StefOptions::new(32));
        let ratio = engine.partial_bytes() as f64 / engine.csf_and_factor_bytes() as f64;
        assert!(
            ratio < 4.0,
            "{}: partial/storage ratio {ratio:.2} is runaway",
            spec.name
        );
    }
}

#[test]
fn ratio_grows_with_rank_when_memoizing() {
    // Table II: the overhead ratio increases slightly from R=32 to R=64
    // (partials and factors double; the CSF does not). Find a memoized
    // tensor and check the direction.
    for spec in workloads::paper_suite() {
        let t = spec.generate(SuiteScale::Tiny);
        let e32 = Stef::prepare(&t, StefOptions::new(32));
        if e32.partial_bytes() == 0 {
            continue;
        }
        let mut o64 = StefOptions::new(64);
        // Force the same save set so only R changes.
        o64.memo = MemoPolicy::Fixed(e32.plan().save.clone());
        let e64 = Stef::prepare(&t, o64);
        let r32 = e32.partial_bytes() as f64 / e32.csf_and_factor_bytes() as f64;
        let r64 = e64.partial_bytes() as f64 / e64.csf_and_factor_bytes() as f64;
        assert!(
            r64 >= r32,
            "{}: ratio should not shrink with rank ({r32:.3} -> {r64:.3})",
            spec.name
        );
        return; // one witness suffices
    }
    panic!("no memoized tensor found in the suite");
}

#[test]
fn model_prediction_is_self_consistent() {
    // The chosen configuration's predicted traffic must be <= both
    // extremes evaluated on the same profile.
    for name in ["uber", "nell-2", "flickr-3d"] {
        let t = suite_tensor(name, SuiteScale::Tiny).unwrap();
        let model = Stef::prepare(&t, StefOptions::new(32));
        let mut all = StefOptions::new(32);
        all.memo = MemoPolicy::SaveAll;
        all.mode_switch = stef::ModeSwitchPolicy::Never;
        let save_all = Stef::prepare(&t, all);
        let mut none = StefOptions::new(32);
        none.memo = MemoPolicy::SaveNone;
        none.mode_switch = stef::ModeSwitchPolicy::Never;
        let save_none = Stef::prepare(&t, none);
        assert!(
            model.plan().predicted <= save_all.plan().predicted + 1e-9,
            "{name}: model {} > save-all {}",
            model.plan().predicted,
            save_all.plan().predicted
        );
        assert!(
            model.plan().predicted <= save_none.plan().predicted + 1e-9,
            "{name}: model {} > save-none {}",
            model.plan().predicted,
            save_none.plan().predicted
        );
    }
}

#[test]
fn vast_analogue_starves_slice_scheduling() {
    let t = suite_tensor("vast-2015-mc1-3d", SuiteScale::Tiny).unwrap();
    let order = sort_modes_by_length(t.dims());
    let csf = build_csf(&t, &order);
    let stats = TensorStats::from_csf(&csf, t.dims());
    assert_eq!(stats.root_slices, 2);
    let nthreads = 8;
    let slice = stef::Schedule::slice_based(&csf, nthreads);
    let busy = (0..nthreads)
        .filter(|&th| slice.nodes_at(th, csf.ndim() - 1) > 0)
        .count();
    assert!(busy <= 2);
    let nnzb = stef::Schedule::nnz_balanced(&csf, nthreads);
    let busy2 = (0..nthreads)
        .filter(|&th| nnzb.nodes_at(th, csf.ndim() - 1) > 0)
        .count();
    assert_eq!(busy2, nthreads);
}

#[test]
fn delicious_analogue_triggers_mode_switch_consideration() {
    // The 4d delicious analogue is built so the swapped order compresses
    // better; verify Algorithm 9 reports fewer fibers for the swap at
    // bench scale (Tiny can be too sparse for collisions, so use Small).
    let t = suite_tensor("delicious-4d", SuiteScale::Small).unwrap();
    let order = sort_modes_by_length(t.dims());
    let csf = build_csf(&t, &order);
    let swapped = sptensor::count_fibers_if_last_two_swapped(&csf);
    let base = csf.nfibers(csf.ndim() - 2);
    assert!(
        swapped != base,
        "orders should differ in fiber count (base {base}, swapped {swapped})"
    );
}

#[test]
fn suite_stats_are_stable_across_generations() {
    for name in ["uber", "nips"] {
        let a = TensorStats::from_coo(&suite_tensor(name, SuiteScale::Tiny).unwrap());
        let b = TensorStats::from_coo(&suite_tensor(name, SuiteScale::Tiny).unwrap());
        assert_eq!(a, b, "{name} generation not deterministic");
    }
}
