//! Edge-case and stress coverage for the persistent worker-pool
//! runtime: odd worker/logical-thread ratios, empty dispatches,
//! back-to-back dispatch storms (the regime where a missed wakeup or a
//! stale-claim race would deadlock or double-execute), concurrent
//! dispatchers sharing one pool, and counter self-consistency.
//!
//! These run against explicitly-sized pools, so real multi-worker
//! dispatch is exercised even on single-core CI runners.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;
use stef::{CancelToken, Executor, FanoutError, Runtime, WorkerPool};

/// Aborts the whole test process if `f` does not finish within
/// `secs` — a deadlocked completion barrier would otherwise hang the
/// suite until the harness-level timeout with no indication of where.
fn with_watchdog<F: FnOnce()>(secs: u64, f: F) {
    let done = Arc::new(AtomicBool::new(false));
    let observer = done.clone();
    std::thread::spawn(move || {
        for _ in 0..secs * 10 {
            std::thread::sleep(Duration::from_millis(100));
            if observer.load(Ordering::Relaxed) {
                return;
            }
        }
        eprintln!("watchdog: test exceeded {secs}s wall time — aborting");
        std::process::abort();
    });
    f();
    done.store(true, Ordering::Relaxed);
}

/// Fans out and asserts every logical thread ran exactly once.
fn assert_exact_coverage(rt: &Executor, nthreads: usize) {
    let hits: Vec<AtomicUsize> = (0..nthreads).map(|_| AtomicUsize::new(0)).collect();
    rt.fanout(nthreads, |th| {
        hits[th].fetch_add(1, Ordering::Relaxed);
    });
    for (th, h) in hits.iter().enumerate() {
        assert_eq!(
            h.load(Ordering::Relaxed),
            1,
            "logical thread {th} of {nthreads} ran a wrong number of times"
        );
    }
}

#[test]
fn nthreads_not_divisible_by_workers() {
    // 7 logical threads on 4 workers, 33 on 8, 5 on 3: remainders must
    // neither be dropped nor run twice.
    for (workers, nthreads) in [(4usize, 7usize), (8, 33), (3, 5), (4, 6), (8, 12)] {
        let rt = Executor::new(Runtime::Pool, workers);
        assert_exact_coverage(&rt, nthreads);
    }
}

#[test]
fn fewer_logical_threads_than_workers() {
    // Most workers find the cursor already exhausted and must park
    // again cleanly without claiming anything.
    for (workers, nthreads) in [(8usize, 1usize), (8, 3), (4, 2), (16, 5)] {
        let rt = Executor::new(Runtime::Pool, workers);
        for _ in 0..10 {
            assert_exact_coverage(&rt, nthreads);
        }
    }
}

#[test]
fn zero_logical_threads_is_a_noop() {
    let rt = Executor::new(Runtime::Pool, 4);
    let ran = AtomicUsize::new(0);
    rt.fanout(0, |_| {
        ran.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(ran.load(Ordering::Relaxed), 0);
    // The pool must still be healthy afterwards.
    assert_exact_coverage(&rt, 9);
}

#[test]
fn dispatch_storm_100k_tiny_jobs() {
    // 100 000 back-to-back dispatches of trivial jobs: the fast path
    // where the dispatcher publishes a new epoch while workers are
    // still draining or parking from the previous one. A missed wakeup
    // deadlocks here within the test timeout; a stale claim (a worker
    // acting on an old epoch's cursor) breaks the per-dispatch sum.
    const DISPATCHES: usize = 100_000;
    const NTHREADS: usize = 5;
    let rt = Executor::new(Runtime::Pool, 4);
    let total = AtomicUsize::new(0);
    for _ in 0..DISPATCHES {
        rt.fanout(NTHREADS, |th| {
            total.fetch_add(th + 1, Ordering::Relaxed);
        });
    }
    // Each dispatch contributes 1+2+...+NTHREADS exactly once.
    let per_dispatch = NTHREADS * (NTHREADS + 1) / 2;
    assert_eq!(total.load(Ordering::Relaxed), DISPATCHES * per_dispatch);

    let c = rt.counters();
    assert_eq!(c.workers, 4);
    assert_eq!(c.dispatches + c.inline_runs, DISPATCHES as u64);
    // Every chunk claim is tallied either by the dispatcher or by the
    // worker that took it; with chunk size 1 (5 threads / 16x4) the
    // claims must add up to exactly the logical threads executed.
    let worker_chunks: u64 = c.per_worker.iter().map(|w| w.chunks).sum();
    assert_eq!(
        c.dispatcher_chunks + worker_chunks,
        (DISPATCHES * NTHREADS) as u64,
        "chunk accounting leaked or double-counted"
    );
}

#[test]
fn counters_are_consistent_after_mixed_sizes() {
    const WORKERS: usize = 3;
    let rt = Executor::new(Runtime::Pool, WORKERS);
    let mut expected_chunks = 0u64;
    let mut expected_dispatched = 0u64;
    let mut expected_inline = 0u64;
    for nthreads in [1usize, 2, 3, 7, 16, 33, 64, 5, 0, 9] {
        assert_exact_coverage(&rt, nthreads);
        match nthreads {
            0 => {}
            1 => expected_inline += 1,
            n => {
                expected_dispatched += 1;
                // The cursor advances by exactly `chunk` per claim
                // (capped at `n`), so a dispatch of `n` items is
                // claimed in ceil(n / chunk) chunks regardless of who
                // claims them.
                let chunk = (n / (4 * WORKERS)).max(1);
                expected_chunks += n.div_ceil(chunk) as u64;
            }
        }
    }
    let c = rt.counters();
    assert_eq!(c.workers, WORKERS);
    assert_eq!(c.dispatches, expected_dispatched);
    assert_eq!(c.inline_runs, expected_inline);
    let worker_chunks: u64 = c.per_worker.iter().map(|w| w.chunks).sum();
    assert_eq!(
        c.dispatcher_chunks + worker_chunks,
        expected_chunks,
        "every chunk must be attributed to exactly one claimant"
    );
    // A worker that was ever busy claimed at least one chunk; parks
    // only ever grow.
    for w in &c.per_worker {
        assert!(w.chunks >= w.busy, "chunks {} < busy {}", w.chunks, w.busy);
    }
}

#[test]
fn concurrent_dispatchers_share_one_pool() {
    // Two OS threads hammer the same pool concurrently. The dispatch
    // lock serializes them; the loser of a try_lock race runs inline.
    // Either way every fan-out must execute exactly once.
    let rt = Executor::new(Runtime::Pool, 4);
    let sum = AtomicUsize::new(0);
    let gate = Barrier::new(2);
    const ROUNDS: usize = 2_000;
    const NTHREADS: usize = 6;
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                gate.wait();
                for _ in 0..ROUNDS {
                    rt.fanout(NTHREADS, |th| {
                        sum.fetch_add(th + 1, Ordering::Relaxed);
                    });
                }
            });
        }
    });
    let per_dispatch = NTHREADS * (NTHREADS + 1) / 2;
    assert_eq!(sum.load(Ordering::Relaxed), 2 * ROUNDS * per_dispatch);
}

#[test]
fn reentrant_fanout_from_a_pool_worker_runs_inline() {
    // A job that itself fans out must not deadlock on the pool it is
    // running on — the inner fan-out detects it is on a pool worker (or
    // fails the dispatch try_lock) and runs inline.
    let rt = Executor::new(Runtime::Pool, 2);
    let hits = AtomicUsize::new(0);
    rt.fanout(4, |_outer| {
        rt.fanout(3, |_inner| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
    });
    assert_eq!(hits.load(Ordering::Relaxed), 12);
}

#[test]
fn worker_panic_yields_typed_error_in_bounded_time_and_pool_heals() {
    with_watchdog(60, || {
        let rt = Executor::new(Runtime::Pool, 4);
        // Thread 3 panics mid-chunk; the completion barrier must still
        // resolve (the panicked chunk counts as done) and the error must
        // carry the payload.
        match rt.try_fanout(8, |th| {
            if th == 3 {
                panic!("pool test boom");
            }
        }) {
            Err(FanoutError::Panicked(msg)) => assert!(msg.contains("pool test boom"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
        // The same executor keeps working — repeatedly, so a worker that
        // died without being respawned would eventually show up as lost
        // coverage or a hang.
        for _ in 0..100 {
            assert_exact_coverage(&rt, 9);
        }
    });
}

#[test]
fn repeated_panics_never_wedge_the_pool() {
    with_watchdog(120, || {
        let rt = Executor::new(Runtime::Pool, 3);
        for round in 0..50 {
            let res = rt.try_fanout(7, |th| {
                if th == round % 7 {
                    panic!("round {round}");
                }
            });
            assert!(matches!(res, Err(FanoutError::Panicked(_))), "{res:?}");
            assert_exact_coverage(&rt, 5);
        }
    });
}

#[test]
fn cancelled_token_short_circuits_dispatch() {
    with_watchdog(60, || {
        let rt = Executor::new(Runtime::Pool, 4);
        let token = CancelToken::new();
        rt.set_cancel(Some(token.clone()));
        token.cancel();
        let ran = AtomicUsize::new(0);
        let res = rt.try_fanout(64, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert!(matches!(res, Err(FanoutError::Cancelled)), "{res:?}");
        // A cancelled dispatch may have run some chunks before the flag
        // was observed, but never the full fan-out.
        assert!(
            ran.load(Ordering::Relaxed) < 64,
            "cancellation did not cut the fan-out short"
        );
        // Detaching the token restores normal service.
        rt.set_cancel(None);
        assert_exact_coverage(&rt, 9);
    });
}

#[test]
fn expired_deadline_cancels_like_an_explicit_cancel() {
    with_watchdog(60, || {
        let rt = Executor::new(Runtime::Pool, 4);
        let token = CancelToken::new();
        token.set_deadline(Duration::ZERO);
        rt.set_cancel(Some(token.clone()));
        let res = rt.try_fanout(32, |_| {});
        assert!(matches!(res, Err(FanoutError::Cancelled)), "{res:?}");
        assert!(token.deadline_expired());
        assert!(token.is_cancelled(), "expiry must promote the sticky flag");
        rt.set_cancel(None);
        assert_exact_coverage(&rt, 6);
    });
}

#[test]
fn raw_pool_survives_drop_with_queued_work_done() {
    // Dropping a pool right after a dispatch must join workers cleanly
    // (the run() barrier guarantees the job is finished first).
    for _ in 0..50 {
        let pool = WorkerPool::new(3);
        let n = AtomicUsize::new(0);
        pool.run(8, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 8);
        drop(pool);
    }
}
