//! Flight-recorder integration: an injected worker panic must leave a
//! dump file behind via the chained panic hook — even though the pool's
//! `catch_unwind` later heals the panic into a typed error — and the
//! dump must carry the recorded event stream (mode sweeps, iterations,
//! the panic itself).

use stef::{cpd_als, CpdOptions, Fault, FaultyEngine, Stef, StefError, StefOptions};
use workloads::power_law_tensor;

#[test]
fn worker_panic_dumps_the_flight_recorder() {
    if !stef::metrics::COMPILED {
        // Without the telemetry feature the recorder is compiled out;
        // `dump` returning `None` is the contract there.
        assert!(stef::flight::dump("test").is_none());
        return;
    }
    let dir = std::env::temp_dir().join(format!("stef-flight-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // One test binary, one test — no env-var race inside this process.
    std::env::set_var("STEF_FLIGHT_DIR", &dir);
    stef::flight::install_panic_hook();

    let t = power_law_tensor(&[40, 35, 30], 3_000, &[0.6, 0.3, 0.1], 17);
    let stef = Stef::prepare(&t, StefOptions::new(3));
    let exec = stef.executor().clone();
    let mut faulty = FaultyEngine::new(stef, vec![Fault::WorkerPanicOnce { at: 2, thread: 1 }])
        .with_executor(exec);
    let opts = CpdOptions {
        max_iters: 4,
        tol: 0.0,
        seed: 21,
        ..CpdOptions::new(3)
    };
    match cpd_als(&mut faulty, &opts) {
        Err(StefError::WorkerPanic { .. }) => {}
        other => panic!("expected WorkerPanic, got {other:?}"),
    }

    // The hook fired at panic! time (before catch_unwind healed it)
    // and wrote the dump into $STEF_FLIGHT_DIR.
    let panic_dump = dir.join(format!("stef-flight-{}-panic.log", std::process::id()));
    let text = std::fs::read_to_string(&panic_dump)
        .unwrap_or_else(|e| panic!("no panic dump at {}: {e}", panic_dump.display()));
    assert!(text.starts_with("# stef flight recorder dump"), "{text}");
    assert!(text.contains("reason=panic"), "{text}");
    assert!(text.contains("worker_panic"), "{text}");
    // The ring retained the kernel activity leading up to the panic.
    assert!(text.contains("mode_sweep"), "{text}");

    // An explicit dump (the SIGUSR1 / error-exit path) also lands in
    // the directory and carries at least as many events.
    let explicit = stef::flight::dump("test").expect("events were recorded");
    assert_eq!(explicit, dir.join(format!("stef-flight-{}-test.log", std::process::id())));
    assert!(std::fs::read_to_string(&explicit).unwrap().contains("worker_panic"));

    std::env::remove_var("STEF_FLIGHT_DIR");
    let _ = std::fs::remove_dir_all(&dir);
}
