//! End-to-end CPD-ALS: recovery of planted low-rank structure, identical
//! iterates across engines, and graceful behaviour on the scaled paper
//! suite.

use stef::{cpd_als, CpdOptions, Stef, Stef2, StefOptions};
use workloads::{planted_lowrank_tensor, suite_tensor, SuiteScale};

#[test]
fn planted_lowrank_is_recovered_by_stef() {
    let planted = planted_lowrank_tensor(&[60, 50, 40], 6_000, 3, 0.0, 42);
    let mut engine = Stef::prepare(&planted.tensor, StefOptions::new(5));
    let mut opts = CpdOptions::new(5);
    opts.max_iters = 60;
    opts.tol = 1e-7;
    let result = cpd_als(&mut engine, &opts).expect("healthy run");
    assert!(
        result.final_fit() > 0.9,
        "noiseless planted rank-3 should fit well, got {}",
        result.final_fit()
    );
}

#[test]
fn noisy_planted_lowrank_still_fits_reasonably() {
    let planted = planted_lowrank_tensor(&[50, 40, 30], 5_000, 3, 0.05, 43);
    let mut engine = Stef::prepare(&planted.tensor, StefOptions::new(4));
    let mut opts = CpdOptions::new(4);
    opts.max_iters = 40;
    let result = cpd_als(&mut engine, &opts).expect("healthy run");
    assert!(
        result.final_fit() > 0.6,
        "mild noise should not destroy the fit, got {}",
        result.final_fit()
    );
}

#[test]
fn every_engine_reaches_the_same_fit() {
    // Same seed + same sweep order per engine family; fits must agree
    // closely because ALS iterates are determined by the MTTKRP results.
    let planted = planted_lowrank_tensor(&[40, 35, 30], 4_000, 2, 0.0, 44);
    let t = planted.tensor;
    let opts = CpdOptions {
        max_iters: 8,
        tol: 0.0,
        seed: 5,
        ..CpdOptions::new(3)
    };
    let mut fits = Vec::new();
    for mut engine in baselines::all_engines(&t, 3, 2) {
        let r = cpd_als(engine.as_mut(), &opts).expect("healthy run");
        fits.push((engine.name(), r.final_fit()));
    }
    // Engines may sweep modes in different orders, which changes the ALS
    // trajectory slightly — but all must converge to comparable fits.
    let max = fits.iter().map(|&(_, f)| f).fold(f64::MIN, f64::max);
    for (name, fit) in &fits {
        assert!(
            (max - fit).abs() < 0.05,
            "engine {name} fit {fit} far from best {max}: {fits:?}"
        );
    }
}

#[test]
fn fits_are_monotone_for_stef2() {
    let planted = planted_lowrank_tensor(&[40, 30, 20, 10], 3_000, 2, 0.0, 45);
    let mut engine = Stef2::prepare(&planted.tensor, StefOptions::new(3));
    let mut opts = CpdOptions::new(3);
    opts.max_iters = 15;
    opts.tol = 0.0;
    let result = cpd_als(&mut engine, &opts).expect("healthy run");
    for w in result.fits.windows(2) {
        assert!(w[1] >= w[0] - 1e-7, "fit decreased: {:?}", result.fits);
    }
}

#[test]
fn cpd_runs_on_every_suite_tensor_tiny() {
    // Smoke across the whole suite: prepare + 2 iterations each.
    for spec in workloads::paper_suite() {
        let t = spec.generate(SuiteScale::Tiny);
        let mut engine = Stef::prepare(&t, StefOptions::new(8));
        let opts = CpdOptions {
            max_iters: 2,
            tol: 0.0,
            seed: 3,
            ..CpdOptions::new(8)
        };
        let result = cpd_als(&mut engine, &opts).expect("healthy run");
        assert_eq!(result.iterations, 2, "{}", spec.name);
        assert!(
            result.fits.iter().all(|f| f.is_finite()),
            "{}: non-finite fit {:?}",
            spec.name,
            result.fits
        );
    }
}

#[test]
fn cpd_is_deterministic_for_fixed_seed_and_threads() {
    let t = suite_tensor("uber", SuiteScale::Tiny).unwrap();
    let run = || {
        let mut opts = StefOptions::new(4);
        opts.num_threads = 2;
        let mut engine = Stef::prepare(&t, opts);
        let copts = CpdOptions {
            max_iters: 3,
            tol: 0.0,
            seed: 9,
            ..CpdOptions::new(4)
        };
        cpd_als(&mut engine, &copts).expect("healthy run").fits
    };
    let a = run();
    let b = run();
    for (x, y) in a.iter().zip(&b) {
        // Atomic boundary adds permit tiny nondeterminism; fits must
        // agree to near machine precision regardless.
        assert!((x - y).abs() < 1e-12, "{a:?} vs {b:?}");
    }
}

#[test]
fn rank_one_tensor_fits_perfectly() {
    use sptensor::CooTensor;
    let mut t = CooTensor::new(vec![8, 8, 8]);
    for i in 0..4u32 {
        for j in 0..4u32 {
            for k in 0..4u32 {
                // T = u ⊗ v ⊗ w with u_i = i+1 etc.
                t.push(&[i, j, k], (i + 1) as f64 * (j + 1) as f64 * (k + 1) as f64);
            }
        }
    }
    let mut engine = Stef::prepare(&t, StefOptions::new(1));
    let mut opts = CpdOptions::new(1);
    opts.max_iters = 30;
    let result = cpd_als(&mut engine, &opts).expect("healthy run");
    assert!(
        result.final_fit() > 0.9999,
        "exact rank-1 tensor, fit {}",
        result.final_fit()
    );
}
