//! Cross-engine consistency: every algorithm in the workspace — STeF,
//! STeF2, SPLATT×3, AdaTM-like, ALTO-like, TACO-like — must compute the
//! exact same MTTKRP as the naive COO reference, for every mode, on the
//! same inputs. This is the repository's strongest correctness net: the
//! engines share almost no code paths with the reference (different
//! formats, different traversals, different parallelism), so agreement
//! pins down all of them at once.

use linalg::{assert_mat_approx_eq, Mat};
use sptensor::CooTensor;
use stef::{init_factors, MttkrpEngine, Stef, Stef2, StefOptions};
use workloads::{clustered_tensor, power_law_tensor, split_root_tensor};

const TOL: f64 = 1e-9;

fn engines_for(t: &CooTensor, rank: usize) -> Vec<Box<dyn MttkrpEngine>> {
    baselines::all_engines(t, rank, 3)
}

fn check_tensor(t: &CooTensor, rank: usize, seed: u64) {
    let factors = init_factors(t.dims(), rank, seed);
    let expected: Vec<Mat> = (0..t.ndim())
        .map(|m| t.mttkrp_reference(&factors, m))
        .collect();
    for mut engine in engines_for(t, rank) {
        // Respect each engine's sweep order so memoization is valid.
        for mode in engine.sweep_order() {
            let got = engine.mttkrp(&factors, mode);
            assert_mat_approx_eq(&got, &expected[mode], TOL);
        }
        // A second sweep (memoized partials now warm) must agree too.
        for mode in engine.sweep_order() {
            let got = engine.mttkrp(&factors, mode);
            assert_mat_approx_eq(&got, &expected[mode], TOL);
        }
    }
}

#[test]
fn all_engines_agree_on_power_law_3d() {
    let t = power_law_tensor(&[60, 45, 30], 3_000, &[1.0, 0.5, 0.0], 1);
    check_tensor(&t, 8, 11);
}

#[test]
fn all_engines_agree_on_power_law_4d() {
    let t = power_law_tensor(&[25, 35, 20, 15], 3_000, &[0.8, 0.2, 0.5, 0.3], 2);
    check_tensor(&t, 4, 12);
}

#[test]
fn all_engines_agree_on_5d() {
    let t = power_law_tensor(&[10, 12, 8, 9, 11], 2_000, &[0.5; 5], 3);
    check_tensor(&t, 3, 13);
}

#[test]
fn all_engines_agree_on_split_root() {
    // The vast-like worst case: 2 root slices, heavy skew.
    let t = split_root_tensor(&[2, 120, 80], 4_000, 0.9, &[0.0, 0.4, 0.4], 4);
    check_tensor(&t, 8, 14);
}

#[test]
fn all_engines_agree_on_clustered() {
    let t = clustered_tensor(&[80, 80, 80], 4_000, 6, 10, 5);
    check_tensor(&t, 8, 15);
}

#[test]
fn all_engines_agree_on_matrix() {
    let t = power_law_tensor(&[50, 70], 1_500, &[0.6, 0.0], 6);
    check_tensor(&t, 4, 16);
}

#[test]
fn stef_results_identical_across_thread_counts() {
    let t = power_law_tensor(&[40, 50, 30], 5_000, &[0.7, 0.3, 0.0], 7);
    let rank = 8;
    let factors = init_factors(t.dims(), rank, 17);
    let run = |threads: usize| -> Vec<Mat> {
        let mut opts = StefOptions::new(rank);
        opts.num_threads = threads;
        let mut engine = Stef::prepare(&t, opts);
        engine
            .sweep_order()
            .into_iter()
            .map(|m| engine.mttkrp(&factors, m))
            .collect()
    };
    let one = run(1);
    for threads in [2, 5, 13] {
        let many = run(threads);
        for (a, b) in one.iter().zip(&many) {
            assert_mat_approx_eq(a, b, TOL);
        }
    }
}

#[test]
fn stef2_and_stef_agree_everywhere() {
    let t = power_law_tensor(&[30, 40, 25, 12], 4_000, &[0.6, 0.2, 0.4, 0.1], 8);
    let rank = 6;
    let factors = init_factors(t.dims(), rank, 18);
    let mut s1 = Stef::prepare(&t, StefOptions::new(rank));
    let mut s2 = Stef2::prepare(&t, StefOptions::new(rank));
    for mode in s1.sweep_order() {
        let a = s1.mttkrp(&factors, mode);
        let b = s2.mttkrp(&factors, mode);
        assert_mat_approx_eq(&a, &b, TOL);
    }
}

#[test]
fn engine_names_are_distinct() {
    let t = power_law_tensor(&[10, 10, 10], 200, &[0.0; 3], 9);
    let engines = engines_for(&t, 2);
    let mut names: Vec<String> = engines.iter().map(|e| e.name()).collect();
    names.sort();
    let before = names.len();
    names.dedup();
    assert_eq!(names.len(), before, "duplicate engine names: {names:?}");
    assert_eq!(before, 8, "the paper compares 8 algorithms");
}
