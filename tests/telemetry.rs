//! Telemetry layer, end to end: per-mode measured counters must be
//! substrate-independent (pool vs scoped), spans must stay well-formed
//! under worker panics and cancellation, the JSONL and Chrome exports
//! must round-trip through the bench crate's tolerant JSON parser, and
//! the model-vs-measured audit must produce finite relative errors.

use stef::{
    cpd_als, CpdOptions, Fault, FaultyEngine, MemoPolicy, Runtime, Stef, StefError, StefOptions,
};
use stef_bench::{parse_json, Json};
use workloads::power_law_tensor;

fn test_tensor() -> sptensor::CooTensor {
    power_law_tensor(&[40, 35, 30], 3_000, &[0.6, 0.3, 0.1], 17)
}

fn engine_options(rank: usize, runtime: Runtime) -> StefOptions {
    let mut o = StefOptions::new(rank);
    o.memo = MemoPolicy::SaveAll;
    o.runtime = runtime;
    o
}

fn cpd_opts(rank: usize, iters: usize) -> CpdOptions {
    CpdOptions {
        max_iters: iters,
        tol: 0.0,
        seed: 21,
        ..CpdOptions::new(rank)
    }
}

fn run_cpd(runtime: Runtime) -> stef::TelemetryReport {
    let t = test_tensor();
    let mut engine = Stef::prepare(&t, engine_options(4, runtime));
    cpd_als(&mut engine, &cpd_opts(4, 4)).expect("healthy run").telemetry
}

#[test]
fn measured_counters_are_identical_across_runtimes() {
    if !stef::telemetry::COMPILED {
        return;
    }
    let pool = run_cpd(Runtime::Pool);
    let scoped = run_cpd(Runtime::Scoped);
    assert_eq!(pool.records.len(), 4, "one record per iteration");
    assert_eq!(pool.records.len(), scoped.records.len());
    for (p, s) in pool.records.iter().zip(&scoped.records) {
        assert_eq!(p.iteration, s.iteration);
        assert_eq!(p.modes.len(), 3);
        assert_eq!(p.modes.len(), s.modes.len());
        for (pm, sm) in p.modes.iter().zip(&s.modes) {
            assert_eq!(pm.mode, sm.mode);
            // Measured traffic is analytic (element counting over the
            // executed path), so it cannot depend on which OS threads
            // ran the chunks.
            assert_eq!(pm.stats, sm.stats, "mode {} stats differ", pm.mode);
            assert_eq!(pm.predicted, sm.predicted);
            let st = pm.stats.as_ref().expect("stef records per-mode stats");
            assert!(st.reads > 0.0 && st.writes > 0.0 && st.fibers > 0);
        }
    }
}

#[test]
fn model_audit_is_finite_and_covers_every_mode() {
    if !stef::telemetry::COMPILED {
        return;
    }
    let report = run_cpd(Runtime::Pool);
    let audits = report.model_audit();
    assert_eq!(audits.len(), 3, "one audit row per mode");
    for a in &audits {
        assert!(a.measured_elems > 0.0, "mode {}: empty measured side", a.mode);
        assert!(a.predicted_elems > 0.0, "mode {}: empty predicted side", a.mode);
        assert!(a.rel_err.is_finite(), "mode {}: rel_err {}", a.mode, a.rel_err);
        assert!(a.abs_err.is_finite() && a.abs_err >= 0.0);
    }
}

#[test]
fn jsonl_export_round_trips_through_the_bench_parser() {
    if !stef::telemetry::COMPILED {
        return;
    }
    let report = run_cpd(Runtime::Pool);
    let body = stef::telemetry::render_metrics_jsonl(&report);
    assert_eq!(body.lines().count(), report.records.len());
    for line in body.lines() {
        let rec = parse_json(line).expect("every JSONL line parses");
        assert_eq!(rec.get("schema").and_then(Json::as_u64), Some(1));
        assert!(rec.get("iteration").and_then(Json::as_u64).is_some());
        assert!(rec.get("fit").and_then(Json::as_f64).is_some());
        let modes = rec.get("modes").and_then(Json::as_arr).expect("modes array");
        assert_eq!(modes.len(), 3);
        for m in modes {
            for key in [
                "seconds",
                "measured_read_bytes",
                "measured_write_bytes",
                "predicted_read_bytes",
                "predicted_write_bytes",
                "rel_err",
            ] {
                let v = m.get(key).and_then(Json::as_f64);
                assert!(
                    v.is_some_and(f64::is_finite),
                    "{key} missing or non-finite in {line}"
                );
            }
        }
    }
}

/// Span capture uses a process-global buffer behind a process-global
/// enable flag, so every tracing scenario lives in this one test —
/// parallel test threads must not toggle the flag underneath each other.
#[test]
fn spans_stay_well_formed_under_tracing_panic_and_cancel() {
    if !stef::telemetry::COMPILED {
        return;
    }
    let t = test_tensor();

    // Clean traced run: spans drain into the result and are well-formed.
    stef::telemetry::set_trace_enabled(true);
    let mut engine = Stef::prepare(&t, engine_options(3, Runtime::Pool));
    let result = cpd_als(&mut engine, &cpd_opts(3, 2)).expect("traced run");
    assert!(!result.telemetry.spans.is_empty(), "traced run recorded no spans");
    for s in &result.telemetry.spans {
        assert!(s.end_ns >= s.start_ns, "span closed before it started: {s:?}");
        assert!(s.chunks > 0);
    }
    let trace = stef::telemetry::render_chrome_trace(&result.telemetry.spans);
    let events = parse_json(&trace).expect("trace parses").as_arr().unwrap().to_vec();
    assert!(events
        .iter()
        .any(|e| e.get("name").and_then(Json::as_str) == Some("thread_name")));
    let spans_in_trace = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .count();
    assert_eq!(spans_in_trace, result.telemetry.spans.len());

    // A worker panic mid-CPD must not leave half-open spans behind.
    let stef = Stef::prepare(&t, engine_options(3, Runtime::Pool));
    let exec = stef.executor().clone();
    let mut faulty = FaultyEngine::new(stef, vec![Fault::WorkerPanicOnce { at: 2, thread: 0 }])
        .with_executor(exec);
    match cpd_als(&mut faulty, &cpd_opts(3, 4)) {
        Err(StefError::WorkerPanic { .. }) => {}
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    for s in stef::telemetry::take_spans() {
        assert!(s.end_ns >= s.start_ns, "panic left a malformed span: {s:?}");
    }

    // A cancelled run likewise: every recorded span is closed.
    let token = stef::CancelToken::new();
    token.cancel();
    let mut opts = engine_options(3, Runtime::Pool);
    opts.cancel = Some(token.clone());
    let mut engine = Stef::prepare(&t, opts);
    let mut copts = cpd_opts(3, 4);
    copts.cancel = Some(token);
    match cpd_als(&mut engine, &copts) {
        Err(StefError::Cancelled { .. }) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    for s in stef::telemetry::take_spans() {
        assert!(s.end_ns >= s.start_ns, "cancel left a malformed span: {s:?}");
    }

    // Disabling tracing stops recording entirely.
    stef::telemetry::set_trace_enabled(false);
    let mut engine = Stef::prepare(&t, engine_options(3, Runtime::Pool));
    let result = cpd_als(&mut engine, &cpd_opts(3, 2)).expect("untraced run");
    assert!(result.telemetry.spans.is_empty(), "tracing off must record nothing");
}

#[test]
fn stef2_reports_leaf_mode_telemetry() {
    if !stef::telemetry::COMPILED {
        return;
    }
    let t = test_tensor();
    let mut engine = stef::Stef2::prepare(&t, engine_options(3, Runtime::Pool));
    let report = cpd_als(&mut engine, &cpd_opts(3, 2)).expect("stef2 run").telemetry;
    for rec in &report.records {
        assert_eq!(rec.modes.len(), 3);
        for m in &rec.modes {
            assert!(m.stats.is_some(), "mode {} missing stats", m.mode);
            assert!(m.predicted.is_some(), "mode {} missing prediction", m.mode);
        }
    }
}
