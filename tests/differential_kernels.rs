//! Differential tests for the vectorized kernel path: on random 3-, 4-
//! and 5-way tensors, every (mode × accumulation × memo-set ×
//! load-balance) combination of the new iterative kernels must agree
//! with the pre-rewrite recursive kernels to 1e-12 and with the naive
//! COO reference to 1e-9. A second, deterministic test pins the new
//! kernels against the paper's literal Algorithm 6/7/8 listings.

use linalg::{assert_mat_approx_eq, Mat};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use sptensor::{build_csf, CooTensor};
use stef::kernels::{mode0_with, modeu_with, KernelCtx, ResolvedAccum};
use stef::{kernels_legacy, LoadBalance, PartialStore, Schedule, Workspace};

/// Strategy: a random small tensor with 3–5 modes.
fn arb_tensor() -> impl Strategy<Value = CooTensor> {
    (3usize..=5)
        .prop_flat_map(|d| {
            (
                pvec(2usize..=8, d..=d),
                pvec(any::<u32>(), 1..=100),
                pvec(-4i32..=4, 1..=100),
            )
        })
        .prop_map(|(dims, coords, vals)| {
            let mut t = CooTensor::new(dims.clone());
            let n = coords.len().min(vals.len());
            let mut coord = vec![0u32; dims.len()];
            for e in 0..n {
                let mut x = coords[e] as u64 | 1;
                for (c, &dim) in coord.iter_mut().zip(&dims) {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    *c = ((x >> 33) % dim as u64) as u32;
                }
                t.push(&coord, vals[e] as f64 + 0.5);
            }
            t.sort_dedup();
            t
        })
        .prop_filter("need at least one nnz", |t| t.nnz() > 0)
}

fn factors_for(dims: &[usize], rank: usize, seed: u64) -> Vec<Mat> {
    let mut x = seed | 1;
    dims.iter()
        .map(|&n| {
            Mat::from_fn(n, rank, |_, _| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 35) % 1000) as f64 / 500.0 - 1.0
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn vectorized_matches_legacy_and_reference(
        t in arb_tensor(),
        rank in 1usize..=4,
        nthreads in 1usize..=7,
        slice_based in any::<bool>(),
        memo_mask in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let d = t.ndim();
        let order: Vec<usize> = (0..d).collect();
        let csf = build_csf(&t, &order);
        let lb = if slice_based {
            LoadBalance::SliceBased
        } else {
            LoadBalance::NnzBalanced
        };
        let sched = Schedule::build(&csf, nthreads, lb);
        let factors = factors_for(t.dims(), rank, seed);
        let refs: Vec<&Mat> = factors.iter().collect();
        let ctx = KernelCtx::new(&csf, &sched, refs, rank);

        // Random memo set over the saveable levels 1..d-1.
        let mut save = vec![false; d];
        for (l, s) in save.iter_mut().enumerate().take(d - 1).skip(1) {
            *s = (memo_mask >> l) & 1 == 1;
        }
        let mut p_new = PartialStore::allocate(&csf, &save, nthreads, rank);
        let mut p_old = PartialStore::allocate(&csf, &save, nthreads, rank);
        let max_dim = *csf.level_dims().iter().max().unwrap();
        let mut ws = Workspace::new(d, rank, nthreads, max_dim);

        // Both paths run mode 0 first, populating their own partials.
        let mut out_new = Mat::zeros(csf.level_dims()[0], rank);
        {
            let views = p_new.shared_views();
            mode0_with(&ctx, &views, stef::runtime::global(), &mut ws, &mut out_new);
        }
        let mut out_old = Mat::zeros(csf.level_dims()[0], rank);
        kernels_legacy::mode0_pass(&ctx, &mut p_old, &mut out_old);
        assert_mat_approx_eq(&out_new, &out_old, 1e-12);
        assert_mat_approx_eq(&out_new, &t.mttkrp_reference(&factors, 0), 1e-9);

        // Every non-root mode × accumulation strategy × memo usage.
        for u in 1..d {
            let expect = t.mttkrp_reference(&factors, u);
            for accum in [ResolvedAccum::Privatized, ResolvedAccum::Atomic] {
                for use_saved in [true, false] {
                    let old =
                        kernels_legacy::modeu_pass(&ctx, &mut p_old, u, accum, use_saved);
                    let mut new = Mat::zeros(csf.level_dims()[u], rank);
                    {
                        let views = p_new.shared_views();
                        modeu_with(
                            &ctx,
                            &views,
                            use_saved,
                            u,
                            accum,
                            stef::runtime::global(),
                            &mut ws,
                            &mut new,
                        );
                    }
                    assert_mat_approx_eq(&new, &old, 1e-12);
                    assert_mat_approx_eq(&new, &expect, 1e-9);
                }
            }
        }
    }
}

/// Runs the vectorized mode-1 kernel of a 4-way tensor under one memo
/// configuration and returns the result.
fn mode1_vectorized(
    csf: &sptensor::Csf,
    refs: &[&Mat],
    rank: usize,
    nthreads: usize,
    save: &[bool],
    use_saved: bool,
) -> Mat {
    let sched = Schedule::build(csf, nthreads, LoadBalance::NnzBalanced);
    let ctx = KernelCtx::new(csf, &sched, refs.to_vec(), rank);
    let mut partials = PartialStore::allocate(csf, save, nthreads, rank);
    let max_dim = *csf.level_dims().iter().max().unwrap();
    let mut ws = Workspace::new(csf.ndim(), rank, nthreads, max_dim);
    let views = partials.shared_views();
    let mut out0 = Mat::zeros(csf.level_dims()[0], rank);
    mode0_with(&ctx, &views, stef::runtime::global(), &mut ws, &mut out0);
    let mut out = Mat::zeros(csf.level_dims()[1], rank);
    modeu_with(
        &ctx,
        &views,
        use_saved,
        1,
        ResolvedAccum::Privatized,
        stef::runtime::global(),
        &mut ws,
        &mut out,
    );
    out
}

#[test]
fn vectorized_kernels_match_paper_listings() {
    use stef::paper_kernels::{
        alg6_mode1_with_p1, alg7_mode1_with_p2, alg8_mode1_no_save, dense_partials_4d,
    };

    let dims = [9usize, 7, 8, 6];
    let mut t = CooTensor::new(dims.to_vec());
    let mut x = 17u64;
    let mut coord = [0u32; 4];
    for _ in 0..600 {
        for (c, &dim) in coord.iter_mut().zip(&dims) {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *c = ((x >> 33) % dim as u64) as u32;
        }
        t.push(&coord, ((x >> 40) % 9) as f64 * 0.25 + 0.25);
    }
    t.sort_dedup();
    let csf = build_csf(&t, &[0, 1, 2, 3]);
    let rank = 3;
    let factors = factors_for(t.dims(), rank, 23);
    let refs: Vec<&Mat> = factors.iter().collect();

    let p1 = dense_partials_4d(&csf, &refs, 1, rank);
    let p2 = dense_partials_4d(&csf, &refs, 2, rank);

    for nthreads in [1usize, 4] {
        // Algorithm 6: P^(1) stored.
        let got = mode1_vectorized(
            &csf,
            &refs,
            rank,
            nthreads,
            &[false, true, false, false],
            true,
        );
        assert_mat_approx_eq(&got, &alg6_mode1_with_p1(&csf, &refs, &p1, rank), 1e-12);

        // Algorithm 7: P^(2) stored.
        let got = mode1_vectorized(
            &csf,
            &refs,
            rank,
            nthreads,
            &[false, false, true, false],
            true,
        );
        assert_mat_approx_eq(&got, &alg7_mode1_with_p2(&csf, &refs, &p2, rank), 1e-12);

        // Algorithm 8: nothing stored.
        let got = mode1_vectorized(
            &csf,
            &refs,
            rank,
            nthreads,
            &[false, false, false, false],
            false,
        );
        assert_mat_approx_eq(&got, &alg8_mode1_no_save(&csf, &refs, rank), 1e-12);
    }
}
