//! I/O and format interchange: `.tns` round trips preserve MTTKRP
//! results end-to-end, the engines accept file-loaded tensors
//! identically to generated ones, and the parser survives arbitrary
//! malformed byte streams with typed errors — never a panic, never a
//! silently corrupted tensor.

use linalg::assert_mat_approx_eq;
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use sptensor::io::{read_tns, write_tns, TnsError};
use stef::{init_factors, MttkrpEngine, Stef, StefOptions};
use workloads::power_law_tensor;

#[test]
fn tns_round_trip_preserves_mttkrp() {
    let t = power_law_tensor(&[40, 30, 20], 2_000, &[0.6, 0.3, 0.0], 1);
    let mut buf = Vec::new();
    write_tns(&t, &mut buf).unwrap();
    let loaded = read_tns(buf.as_slice()).unwrap();
    // Dims may shrink-wrap to max coordinates; re-embed to the original.
    assert!(loaded.dims().iter().zip(t.dims()).all(|(&a, &b)| a <= b));
    let rank = 4;
    // Compare on the shrink-wrapped dims: rebuild the original in the
    // same dims for a like-for-like factor shape.
    let mut reshaped = sptensor::CooTensor::new(loaded.dims().to_vec());
    for e in 0..t.nnz() {
        reshaped.push(&t.coord(e), t.values()[e]);
    }
    let factors = init_factors(loaded.dims(), rank, 2);
    let mut e1 = Stef::prepare(&reshaped, StefOptions::new(rank));
    let mut e2 = Stef::prepare(&loaded, StefOptions::new(rank));
    for mode in e1.sweep_order() {
        assert_mat_approx_eq(
            &e1.mttkrp(&factors, mode),
            &e2.mttkrp(&factors, mode),
            1e-12,
        );
    }
}

#[test]
fn tns_file_round_trip_on_disk() {
    let t = power_law_tensor(&[10, 12, 8, 6], 500, &[0.4; 4], 3);
    let dir = std::env::temp_dir().join("stef-io-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.tns");
    sptensor::io::write_tns_file(&t, &path).unwrap();
    let loaded = sptensor::io::read_tns_file(&path).unwrap();
    assert_eq!(loaded.nnz(), t.nnz());
    let mut sorted_orig = t.clone();
    sorted_orig.sort_dedup();
    let mut sorted_loaded = loaded;
    sorted_loaded.sort_dedup();
    for e in (0..sorted_orig.nnz()).step_by(7) {
        assert_eq!(sorted_orig.coord(e), sorted_loaded.coord(e));
        assert!((sorted_orig.values()[e] - sorted_loaded.values()[e]).abs() < 1e-12);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn alto_and_csf_engines_agree_on_loaded_file() {
    let t = power_law_tensor(&[25, 25, 25], 1_500, &[0.5; 3], 4);
    let mut buf = Vec::new();
    write_tns(&t, &mut buf).unwrap();
    let loaded = read_tns(buf.as_slice()).unwrap();
    let rank = 4;
    let factors = init_factors(loaded.dims(), rank, 5);
    let mut alto = baselines::Alto::prepare(&loaded, rank, 2);
    let mut stef_engine = Stef::prepare(&loaded, StefOptions::new(rank));
    for mode in stef_engine.sweep_order() {
        assert_mat_approx_eq(
            &alto.mttkrp(&factors, mode),
            &stef_engine.mttkrp(&factors, mode),
            1e-9,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A stream cut off at any byte (a crashed writer, a truncated
    /// download) must load as a shorter-but-valid tensor or fail with a
    /// typed error — the parser must never panic or wrap around.
    #[test]
    fn truncated_tns_streams_fail_typed_or_load_clean(
        entries in pvec((1u32..40, 1u32..40, 1u32..40, -5.0f64..5.0), 1..30),
        cut_permille in 0usize..=1000,
    ) {
        let mut text = String::new();
        for (i, j, k, v) in &entries {
            text += &format!("{i} {j} {k} {v}\n");
        }
        let cut = text.len() * cut_permille / 1000;
        match read_tns(&text.as_bytes()[..cut]) {
            // A cut at a line boundary can leave a valid prefix.
            Ok(t) => prop_assert!(t.nnz() <= entries.len()),
            // Random coordinate triples can collide, and a truncated
            // final line can change the apparent arity or leave a bad
            // value; all of those must surface as typed errors.
            Err(TnsError::Parse { .. } | TnsError::Empty | TnsError::Duplicate { .. }) => {}
            Err(other) => panic!("unexpected error class for truncation at {cut}: {other:?}"),
        }
    }

    /// 1-based indices above 2^32 cannot be represented in the u32
    /// coordinate storage; they must be rejected on the offending line,
    /// not silently wrapped into an aliasing small coordinate.
    #[test]
    fn oversized_indices_are_rejected_not_wrapped(
        small in 1u64..1000,
        excess in 0u64..1_000_000,
        mode_pos in 0usize..3,
    ) {
        let big = (1u64 << 32) + 1 + excess;
        let mut fields = [small.to_string(), small.to_string(), small.to_string()];
        fields[mode_pos] = big.to_string();
        let text = format!("1 1 1 1.0\n{} {} {} 2.0\n", fields[0], fields[1], fields[2]);
        match read_tns(text.as_bytes()) {
            Err(TnsError::Parse { line: 2, msg }) => {
                prop_assert!(msg.contains("exceeds"), "{msg}");
            }
            other => panic!("expected Parse on line 2, got {other:?}"),
        }
    }

    /// Coordinate tokens too large even for u64 hit the integer parser
    /// instead; same contract: typed rejection.
    #[test]
    fn absurdly_long_digit_strings_are_rejected(digits in pvec(0u8..10, 21..60)) {
        let tok: String = digits.iter().map(|d| char::from(b'0' + d)).collect();
        // 21+ digits always overflows u64 once the leading digit is
        // forced nonzero.
        let tok = format!("9{tok}");
        let text = format!("{tok} 1 1.0\n");
        match read_tns(text.as_bytes()) {
            Err(TnsError::Parse { line: 1, .. }) => {}
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    /// Arbitrary byte soup — including invalid UTF-8 — must never panic;
    /// invalid encodings surface as typed I/O errors.
    #[test]
    fn arbitrary_byte_streams_never_panic(bytes in pvec(any::<u8>(), 0..300)) {
        match read_tns(bytes.as_slice()) {
            Ok(_) | Err(_) => {}
        }
    }

    /// Directed non-UTF8: a valid line followed by an invalid sequence.
    #[test]
    fn non_utf8_tails_yield_io_errors(garbage in pvec(128u8..=255, 1..20)) {
        let mut bytes = b"1 1 1.0\n\xff\xfe".to_vec();
        bytes.extend_from_slice(&garbage);
        match read_tns(bytes.as_slice()) {
            Err(TnsError::Io(_)) => {}
            other => panic!("expected Io for invalid UTF-8, got {other:?}"),
        }
    }
}
