//! I/O and format interchange: `.tns` round trips preserve MTTKRP
//! results end-to-end, and the engines accept file-loaded tensors
//! identically to generated ones.

use linalg::assert_mat_approx_eq;
use sptensor::io::{read_tns, write_tns};
use stef::{init_factors, MttkrpEngine, Stef, StefOptions};
use workloads::power_law_tensor;

#[test]
fn tns_round_trip_preserves_mttkrp() {
    let t = power_law_tensor(&[40, 30, 20], 2_000, &[0.6, 0.3, 0.0], 1);
    let mut buf = Vec::new();
    write_tns(&t, &mut buf).unwrap();
    let loaded = read_tns(buf.as_slice()).unwrap();
    // Dims may shrink-wrap to max coordinates; re-embed to the original.
    assert!(loaded.dims().iter().zip(t.dims()).all(|(&a, &b)| a <= b));
    let rank = 4;
    // Compare on the shrink-wrapped dims: rebuild the original in the
    // same dims for a like-for-like factor shape.
    let mut reshaped = sptensor::CooTensor::new(loaded.dims().to_vec());
    for e in 0..t.nnz() {
        reshaped.push(&t.coord(e), t.values()[e]);
    }
    let factors = init_factors(loaded.dims(), rank, 2);
    let mut e1 = Stef::prepare(&reshaped, StefOptions::new(rank));
    let mut e2 = Stef::prepare(&loaded, StefOptions::new(rank));
    for mode in e1.sweep_order() {
        assert_mat_approx_eq(
            &e1.mttkrp(&factors, mode),
            &e2.mttkrp(&factors, mode),
            1e-12,
        );
    }
}

#[test]
fn tns_file_round_trip_on_disk() {
    let t = power_law_tensor(&[10, 12, 8, 6], 500, &[0.4; 4], 3);
    let dir = std::env::temp_dir().join("stef-io-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.tns");
    sptensor::io::write_tns_file(&t, &path).unwrap();
    let loaded = sptensor::io::read_tns_file(&path).unwrap();
    assert_eq!(loaded.nnz(), t.nnz());
    let mut sorted_orig = t.clone();
    sorted_orig.sort_dedup();
    let mut sorted_loaded = loaded;
    sorted_loaded.sort_dedup();
    for e in (0..sorted_orig.nnz()).step_by(7) {
        assert_eq!(sorted_orig.coord(e), sorted_loaded.coord(e));
        assert!((sorted_orig.values()[e] - sorted_loaded.values()[e]).abs() < 1e-12);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn alto_and_csf_engines_agree_on_loaded_file() {
    let t = power_law_tensor(&[25, 25, 25], 1_500, &[0.5; 3], 4);
    let mut buf = Vec::new();
    write_tns(&t, &mut buf).unwrap();
    let loaded = read_tns(buf.as_slice()).unwrap();
    let rank = 4;
    let factors = init_factors(loaded.dims(), rank, 5);
    let mut alto = baselines::Alto::prepare(&loaded, rank, 2);
    let mut stef_engine = Stef::prepare(&loaded, StefOptions::new(rank));
    for mode in stef_engine.sweep_order() {
        assert_mat_approx_eq(
            &alto.mttkrp(&factors, mode),
            &stef_engine.mttkrp(&factors, mode),
            1e-9,
        );
    }
}
