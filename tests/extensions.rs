//! Cross-crate tests of the extension features: Lexi-Order feeding the
//! engines, nonnegative CP over every engine, the instrumented traffic
//! counter against engine-reported storage, and the typed CSF iterators
//! against kernel results.

use linalg::assert_mat_approx_eq;
use sptensor::reorder::lexi_order;
use sptensor::{build_csf, sort_modes_by_length};
use stef::{
    count_sweep, cpd_mu_nonneg, init_factors, CpdOptions, MttkrpEngine, Stef, StefOptions,
};
use workloads::{clustered_tensor, power_law_tensor};

#[test]
fn lexi_order_preserves_engine_results_up_to_renaming() {
    let t = clustered_tensor(&[60, 80, 50], 3_000, 5, 8, 1);
    let (reordered, renumbering) = lexi_order(&t, 2);
    let rank = 4;

    // Factors for the reordered tensor = original factors with rows
    // permuted; then MTTKRP outputs must match under the same renaming.
    let factors = init_factors(t.dims(), rank, 7);
    let factors_reordered: Vec<linalg::Mat> = (0..t.ndim())
        .map(|m| {
            linalg::Mat::from_fn(t.dims()[m], rank, |new_row, r| {
                let old = renumbering.inverse[m][new_row] as usize;
                factors[m][(old, r)]
            })
        })
        .collect();

    let mut e1 = Stef::prepare(&t, StefOptions::new(rank));
    let mut e2 = Stef::prepare(&reordered, StefOptions::new(rank));
    for mode in e1.sweep_order() {
        let a = e1.mttkrp(&factors, mode);
        let b = e2.mttkrp(&factors_reordered, mode);
        // b's rows are in new numbering; map back.
        let b_unmapped = linalg::Mat::from_fn(a.rows(), rank, |old, r| {
            b[(renumbering.forward[mode][old] as usize, r)]
        });
        assert_mat_approx_eq(&a, &b_unmapped, 1e-9);
    }
}

#[test]
fn nonneg_cp_works_on_every_engine() {
    let t = power_law_tensor(&[40, 30, 20], 1_500, &[0.5, 0.3, 0.0], 2);
    let opts = CpdOptions {
        max_iters: 5,
        tol: 0.0,
        seed: 3,
        ..CpdOptions::new(3)
    };
    let mut final_fits = Vec::new();
    for mut engine in baselines::all_engines(&t, 3, 2) {
        let result = cpd_mu_nonneg(engine.as_mut(), &opts);
        assert!(
            result
                .factors
                .iter()
                .all(|f| f.as_slice().iter().all(|&v| v >= 0.0 && v.is_finite())),
            "{} produced negative/non-finite factors",
            engine.name()
        );
        final_fits.push((engine.name(), result.final_fit()));
    }
    // All engines compute the same MTTKRPs, so MU trajectories coincide
    // for engines with the same sweep order; at minimum, all fits must
    // be finite and in [0, 1].
    for (name, fit) in &final_fits {
        assert!(
            fit.is_finite() && *fit <= 1.0,
            "{name} fit {fit} out of range"
        );
    }
}

#[test]
fn counted_traffic_tracks_engine_storage_decisions() {
    // The engine's chosen save set must count strictly more writes than
    // save-none whenever it memoizes anything, and its partial_bytes
    // must equal the counted extra write volume (rows × R × 8).
    let t = clustered_tensor(&[50, 60, 400], 5_000, 8, 10, 4);
    let rank = 16;
    let engine = Stef::prepare(&t, StefOptions::new(rank));
    let csf = engine.csf();
    let save = engine.plan().save.clone();
    let none = vec![false; csf.ndim()];
    let with_save = count_sweep(csf, &save, rank);
    let without = count_sweep(csf, &none, rank);
    let extra_write_elems = with_save.writes - without.writes;
    let expected_rows: usize = (0..csf.ndim())
        .filter(|&l| save[l])
        .map(|l| csf.nfibers(l))
        .sum();
    assert!(
        (extra_write_elems - (expected_rows * rank) as f64).abs() < 1e-9,
        "extra writes {} vs expected rows {}",
        extra_write_elems,
        expected_rows * rank
    );
    if save.iter().any(|&s| s) {
        // partial_bytes covers the same rows (+T replicas).
        let lower = expected_rows * rank * 8;
        let saved_levels = save.iter().filter(|&&s| s).count();
        assert!(engine.partial_bytes() >= lower);
        // Slack: up to T replica rows per saved level (T <= 256 here).
        assert!(engine.partial_bytes() <= lower + saved_levels * 256 * rank * 8);
    }
}

#[test]
fn typed_iterators_agree_with_mttkrp_row_support() {
    // Rows of the mode-0 MTTKRP are nonzero exactly for fids that the
    // slice iterator reports (generically — with random positive
    // factors and values, cancellation is measure-zero).
    let t = power_law_tensor(&[30, 25, 20], 800, &[0.8, 0.2, 0.0], 5);
    let order = sort_modes_by_length(t.dims());
    let csf = build_csf(&t, &order);
    let rank = 3;
    let mut engine = Stef::prepare(&t, StefOptions::new(rank));
    let factors = init_factors(t.dims(), rank, 11); // strictly positive
    let root_mode = engine.sweep_order()[0];
    let out = engine.mttkrp(&factors, root_mode);
    let mut support_from_iter = vec![false; out.rows()];
    for slice in csf.slices() {
        support_from_iter[slice.fid() as usize] = true;
    }
    for (i, &in_support) in support_from_iter.iter().enumerate() {
        let row_nonzero = out.row(i).iter().any(|&v| v != 0.0);
        assert_eq!(row_nonzero, in_support, "row {i} support mismatch");
    }
}
