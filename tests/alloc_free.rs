//! The MTTKRP passes must be allocation-free once the engine-owned
//! [`stef::Workspace`] is warm: every byte of scratch, every traversal
//! stack and every privatized output copy lives in buffers sized during
//! warm-up and reused across modes and sweeps.
//!
//! This harness installs a counting `#[global_allocator]` (each `tests/`
//! file is its own binary, so the hook is test-local) and asserts that a
//! steady-state sweep performs **zero** allocator calls. The kernels run
//! on an explicitly-sized persistent [`stef::WorkerPool`], whose
//! dispatch path makes no allocator calls (workers are spawned once,
//! before counting starts; a dispatch is a seqlock publish plus futex
//! wakeups) — so the zero-count assertion holds for *any* worker count,
//! unlike the old `std::thread::scope` fan-out which paid a per-spawn
//! allocation. The workspace's own `alloc_events` counter is asserted
//! as well, guarding kernel scratch independently of the runtime.

use linalg::Mat;
use sptensor::build_csf;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use stef::kernels::{mode0_with, modeu_with, KernelCtx, ResolvedAccum};
use stef::{init_factors, LoadBalance, PartialStore, Schedule, Workspace};
use workloads::power_law_tensor;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::SeqCst)
}

/// Runs `rounds` full sweeps (mode 0 plus every mode-u × both accum
/// strategies) against pre-built state and returns the number of
/// allocator calls they triggered.
fn count_sweep_allocs(
    ctx: &KernelCtx<'_>,
    partials: &mut PartialStore,
    rt: &stef::Executor,
    ws: &mut Workspace,
    outs: &mut [Mat],
    rounds: usize,
) -> u64 {
    let d = outs.len();
    let views = partials.shared_views();
    // Warm-up: sizes the workspace for every (mode, accum) combination.
    mode0_with(ctx, &views, rt, ws, &mut outs[0]);
    for u in 1..d {
        for accum in [ResolvedAccum::Privatized, ResolvedAccum::Atomic] {
            modeu_with(ctx, &views, true, u, accum, rt, ws, &mut outs[u]);
        }
    }
    let before_events = ws.alloc_events();
    let before = alloc_calls();
    for _ in 0..rounds {
        mode0_with(ctx, &views, rt, ws, &mut outs[0]);
        for u in 1..d {
            for accum in [ResolvedAccum::Privatized, ResolvedAccum::Atomic] {
                modeu_with(ctx, &views, true, u, accum, rt, ws, &mut outs[u]);
            }
        }
    }
    let delta = alloc_calls() - before;
    assert_eq!(
        ws.alloc_events(),
        before_events,
        "workspace grew during steady-state sweeps"
    );
    delta
}

fn run_case(dims: &[usize], nnz: usize, rank: usize, nthreads: usize, save: &[bool]) {
    let t = power_law_tensor(dims, nnz, &vec![0.5; dims.len()], 11);
    let order: Vec<usize> = (0..dims.len()).collect();
    let csf = build_csf(&t, &order);
    let d = csf.ndim();
    let sched = Schedule::build(&csf, nthreads, LoadBalance::NnzBalanced);
    let factors = init_factors(dims, rank, 3);
    let refs: Vec<&Mat> = factors.iter().collect();
    let ctx = KernelCtx::new(&csf, &sched, refs, rank);
    let mut partials = PartialStore::allocate(&csf, save, nthreads, rank);
    let max_dim = *csf.level_dims().iter().max().unwrap();
    let mut ws = Workspace::new(d, rank, nthreads, max_dim);
    let mut outs: Vec<Mat> = (0..d)
        .map(|l| Mat::zeros(csf.level_dims()[l], rank))
        .collect();

    // A genuinely multi-worker pool (not the hardware probe): the
    // zero-alloc claim must hold when dispatches actually cross OS
    // threads, not just on the single-worker inline path.
    let rt = stef::Executor::new(stef::Runtime::Pool, nthreads.clamp(1, 4));
    let delta = count_sweep_allocs(&ctx, &mut partials, &rt, &mut ws, &mut outs, 3);
    assert_eq!(
        delta, 0,
        "steady-state sweeps allocated {delta} times (dims {dims:?}, \
         {nthreads} logical threads, {} pool workers)",
        rt.workers()
    );
}

#[test]
fn warm_sweeps_are_allocation_free_single_thread() {
    run_case(&[40, 30, 50], 2_000, 8, 1, &[false, true, false]);
}

#[test]
fn warm_sweeps_are_allocation_free_eight_logical_threads() {
    run_case(&[40, 30, 50], 2_000, 8, 8, &[false, true, false]);
}

#[test]
fn warm_sweeps_are_allocation_free_4way_with_memo() {
    run_case(&[20, 25, 15, 30], 2_500, 5, 4, &[false, true, true, false]);
}

#[test]
fn engine_reports_zero_workspace_growth_after_prepare() {
    use stef::{MttkrpEngine, Stef, StefOptions};
    let t = power_law_tensor(&[30, 40, 20], 1_500, &[0.5, 0.5, 0.5], 7);
    let mut opts = StefOptions::new(6);
    opts.num_threads = 4;
    let mut engine = Stef::prepare(&t, opts);
    let factors = init_factors(t.dims(), 6, 5);
    for _ in 0..3 {
        for mode in engine.sweep_order() {
            std::hint::black_box(engine.mttkrp(&factors, mode));
        }
    }
    assert_eq!(
        engine.workspace_alloc_events(),
        0,
        "engine workspace must be fully sized at prepare time"
    );
}

