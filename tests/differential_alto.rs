//! Differential suite for the linearized (ALTO-style) MTTKRP engine:
//! on random 3–5-way tensors, [`stef::AltoEngine`] must agree with the
//! CSF engine ([`stef::Stef`]) and with the serial `baselines::Alto`
//! oracle to 1e-12 — across every mode, both accumulation strategies,
//! and ragged (non-power-of-two) ranks. Two deterministic tests follow:
//! a bitwise-determinism sweep across worker counts, and an alloc-free
//! assertion on the linearized kernels via a counting global allocator
//! (each `tests/` file is its own binary, so the hook is test-local).

use baselines::Alto as AltoOracle;
use linalg::{assert_mat_approx_eq, Mat};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use sptensor::{CooTensor, Linearized};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use stef::kernels::ResolvedAccum;
use stef::kernels_alto::alto_mode_with;
use stef::{
    AccumStrategy, AltoEngine, Executor, MttkrpEngine, Runtime, Stef, StefOptions, Workspace,
};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Strategy: a random small tensor with 3–5 modes.
fn arb_tensor() -> impl Strategy<Value = CooTensor> {
    (3usize..=5)
        .prop_flat_map(|d| {
            (
                pvec(2usize..=8, d..=d),
                pvec(any::<u32>(), 1..=100),
                pvec(-4i32..=4, 1..=100),
            )
        })
        .prop_map(|(dims, coords, vals)| {
            let mut t = CooTensor::new(dims.clone());
            let mut coord = vec![0u32; dims.len()];
            let n = coords.len().min(vals.len());
            for e in 0..n {
                let mut x = coords[e] as u64 | 1;
                for (c, &dim) in coord.iter_mut().zip(&dims) {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    *c = ((x >> 33) % dim as u64) as u32;
                }
                t.push(&coord, vals[e] as f64 + 0.5);
            }
            t.sort_dedup();
            t
        })
        .prop_filter("need at least one nnz", |t| t.nnz() > 0)
}

fn factors_for(dims: &[usize], rank: usize, seed: u64) -> Vec<Mat> {
    let mut x = seed | 1;
    dims.iter()
        .map(|&n| {
            Mat::from_fn(n, rank, |_, _| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 35) % 1000) as f64 / 500.0 - 1.0
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Three-way agreement: linearized engine vs CSF engine vs the
    /// serial baseline oracle, every mode, both forced accumulation
    /// strategies, ragged ranks.
    #[test]
    fn alto_engine_matches_csf_and_oracle(
        t in arb_tensor(),
        rank in 1usize..=9,
        threads in 1usize..=4,
    ) {
        let factors = factors_for(t.dims(), rank, 77);
        let mut stef_engine = Stef::prepare(&t, StefOptions::new(rank));
        let mut oracle = AltoOracle::prepare(&t, rank, 1);
        for accum in [AccumStrategy::Auto, AccumStrategy::Privatized, AccumStrategy::Atomic] {
            let mut opts = StefOptions::new(rank);
            opts.accum = accum;
            opts.num_threads = threads;
            let mut alto = AltoEngine::prepare(&t, opts);
            for mode in 0..t.dims().len() {
                let got = alto.mttkrp(&factors, mode);
                let csf = stef_engine.mttkrp(&factors, mode);
                let oracled = oracle.mttkrp(&factors, mode);
                assert_mat_approx_eq(&got, &csf, 1e-12);
                assert_mat_approx_eq(&got, &oracled, 1e-12);
            }
        }
    }
}

/// The linearized kernels partition work by *logical* thread and reduce
/// privatized copies in logical-thread order regardless of how physical
/// pool workers claim chunks — the same contract the CSF kernels make
/// (see `tests/determinism.rs`). So at a fixed logical thread count the
/// bits must match across executors and pool-worker counts, including
/// counts that do not divide the nonzero count.
#[test]
fn results_are_bitwise_identical_across_worker_counts() {
    let t = {
        let mut t = CooTensor::new(vec![40, 30, 50, 9]);
        let mut x = 91u64;
        let mut coord = [0u32; 4];
        for _ in 0..3000 {
            for (c, &dim) in coord.iter_mut().zip(&[40u64, 30, 50, 9]) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % dim) as u32;
            }
            t.push(&coord, ((x >> 40) % 9) as f64 * 0.3 + 0.4);
        }
        t.sort_dedup();
        t
    };
    let (rank, nthreads) = (7, 6);
    let lin = Linearized::build(&t).expect("fits in 128 bits");
    let factors = factors_for(t.dims(), rank, 5);
    let refs: Vec<&Mat> = factors.iter().collect();
    let max_priv = *t.dims().iter().max().unwrap();

    let mut run = |rt: &Executor, accum: ResolvedAccum| -> Vec<Vec<u64>> {
        let mut ws = Workspace::new(t.dims().len(), rank, nthreads, max_priv);
        (0..t.dims().len())
            .map(|mode| {
                let mut out = Mat::zeros(t.dims()[mode], rank);
                alto_mode_with(&lin, &refs, mode, nthreads, accum, rt, &mut ws, &mut out);
                (0..out.rows())
                    .flat_map(|i| out.row(i).iter().map(|v| v.to_bits()).collect::<Vec<_>>())
                    .collect()
            })
            .collect()
    };

    // Atomic emission is order-dependent, so only the privatized path
    // carries the bitwise guarantee (matching the CSF engine).
    let reference = run(&Executor::new(Runtime::Scoped, 4), ResolvedAccum::Privatized);
    for workers in [1usize, 2, 3, 8] {
        let pool = Executor::new(Runtime::Pool, workers);
        assert_eq!(
            run(&pool, ResolvedAccum::Privatized),
            reference,
            "pool({workers} workers) diverged from scoped"
        );
    }
}

/// Steady-state linearized sweeps make zero allocator calls: the
/// workspace arenas are warm, the output matrix is caller-owned, and a
/// pool dispatch is a seqlock publish plus futex wakeups.
#[test]
fn warm_linearized_sweeps_are_alloc_free() {
    let t = {
        let mut t = CooTensor::new(vec![60, 40, 80]);
        let mut x = 17u64;
        let mut coord = [0u32; 3];
        for _ in 0..4000 {
            for (c, &dim) in coord.iter_mut().zip(&[60u64, 40, 80]) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % dim) as u32;
            }
            t.push(&coord, ((x >> 40) % 9) as f64 * 0.3 + 0.4);
        }
        t.sort_dedup();
        t
    };
    let (rank, nthreads) = (6, 4);
    let lin = Linearized::build(&t).expect("fits in 128 bits");
    let factors = factors_for(t.dims(), rank, 3);
    let refs: Vec<&Mat> = factors.iter().collect();
    let rt = Executor::new(Runtime::Pool, nthreads);
    let max_priv = *t.dims().iter().max().unwrap();
    let mut ws = Workspace::new(t.dims().len(), rank, nthreads, max_priv);
    let mut outs: Vec<Mat> = t.dims().iter().map(|&n| Mat::zeros(n, rank)).collect();
    for accum in [ResolvedAccum::Privatized, ResolvedAccum::Atomic] {
        // Warm-up sweep: faults pages, sizes arenas.
        for mode in 0..t.dims().len() {
            alto_mode_with(&lin, &refs, mode, nthreads, accum, &rt, &mut ws, &mut outs[mode]);
        }
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        let ws_before = ws.alloc_events();
        for _ in 0..3 {
            for mode in 0..t.dims().len() {
                alto_mode_with(&lin, &refs, mode, nthreads, accum, &rt, &mut ws, &mut outs[mode]);
            }
        }
        let after = ALLOC_CALLS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "{accum:?}: steady-state linearized sweeps must not allocate"
        );
        assert_eq!(ws.alloc_events(), ws_before, "workspace arenas regrew");
    }
}
