//! # stef-repro — Sparsity-Aware Tensor Decomposition in Rust
//!
//! An open-source reproduction of *"Sparsity-Aware Tensor Decomposition"*
//! (Kurt, Raje, Sukumaran-Rajam, Sadayappan — IPDPS 2022): the **STeF**
//! sparse CP decomposition system, its data-movement model, its
//! nnz-balanced parallel scheduler, and every baseline the paper
//! compares against.
//!
//! This crate is a facade that re-exports the workspace:
//!
//! * [`sptensor`] — COO / CSF sparse tensor substrate, FROSTT I/O,
//!   fiber statistics, Algorithm 9;
//! * [`linalg`] — dense small-matrix algebra (Grams, Cholesky solves,
//!   Khatri–Rao helpers);
//! * [`stef`] — the STeF and STeF2 engines, memoized MTTKRP kernels,
//!   the data-movement model, and the CPD-ALS driver;
//! * [`baselines`] — SPLATT-1/2/all, AdaTM-like, ALTO-like, TACO-like;
//! * [`workloads`] — seeded synthetic analogues of the paper's tensor
//!   suite.
//!
//! ## Five-minute tour
//!
//! ```
//! use stef_repro::prelude::*;
//!
//! // 1. Get a tensor: synthetic, from the paper suite, or a .tns file.
//! let tensor = workloads::power_law_tensor(&[300, 400, 500], 20_000, &[0.8, 0.4, 0.2], 1);
//!
//! // 2. Prepare the engine — the model picks memoization + mode order.
//! let mut engine = Stef::prepare(&tensor, StefOptions::new(16));
//! println!("memoized levels: {:?}", engine.plan().save);
//!
//! // 3. Decompose. Numerical failures surface as typed errors, never panics.
//! let result = cpd_als(&mut engine, &CpdOptions::new(16)).expect("decomposition failed");
//! println!("fit = {:.4} after {} iterations", result.final_fit(), result.iterations);
//! # assert!(result.final_fit() <= 1.0);
//! ```

pub use baselines;
pub use linalg;
pub use sptensor;
pub use stef;
pub use workloads;

/// The names most programs need, in one import.
pub mod prelude {
    pub use baselines::{AdaTm, Alto, Splatt, SplattVariant, TacoLike};
    pub use linalg::Mat;
    pub use sptensor::{build_csf, CooTensor, Csf, TensorStats};
    pub use stef::{
        cpd_als, Checkpoint, CheckpointPolicy, CpdOptions, CpdResult, LoadBalance, MemoPolicy,
        ModeSwitchPolicy, MttkrpEngine, RecoveryPolicy, Stef, StefError, Stef2, StefOptions,
    };
    pub use workloads;
}
