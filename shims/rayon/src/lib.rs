//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rayon` to this shim. It provides *real* parallelism via
//! `std::thread::scope` — work is split into one contiguous batch per
//! available core — but only for the combinators the workspace actually
//! calls: `into_par_iter` on ranges, `par_chunks`/`par_chunks_mut` on
//! slices, `par_sort_unstable_by`, and the `map`/`for_each`/`collect`/
//! `sum`/`enumerate` adapters. Ordering guarantees match rayon where the
//! callers rely on them (`map().collect()` preserves input order).

use std::ops::Range;

/// Number of worker threads a parallel region will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item, in parallel, preserving input order in the
/// returned vector. The backbone of every adapter in this shim.
fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        let mut iter = items.into_iter();
        loop {
            let batch: Vec<T> = iter.by_ref().take(chunk).collect();
            if batch.is_empty() {
                break;
            }
            let fr = &f;
            handles.push(s.spawn(move || batch.into_iter().map(fr).collect::<Vec<R>>()));
        }
        for h in handles {
            out.push(h.join().expect("parallel worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Parallel iterator over owned items (materialized up front; the
/// workspace only fans out over small index ranges).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_map_vec(self.items, f);
    }

    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of `ParIter::map`; consumed by `collect` or `sum`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    pub fn collect<B, R>(self) -> B
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        B: FromIterator<R>,
    {
        par_map_vec(self.items, self.f).into_iter().collect()
    }

    pub fn sum<S, R>(self) -> S
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        S: std::iter::Sum<R>,
    {
        par_map_vec(self.items, self.f).into_iter().sum()
    }

    pub fn for_each<R, G>(self, g: G)
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        G: Fn(R) + Sync,
    {
        par_map_vec(self.items, |t| g((self.f)(t)));
    }
}

/// `into_par_iter()` entry point.
pub trait IntoParallelIterator {
    type Item;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_chunks` / `par_iter` on shared slices.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        assert!(size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(size).collect(),
        }
    }

    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_chunks_mut` / `par_sort_unstable_by` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, size: usize) -> ParIterMut<'_, T>;
    fn par_sort_unstable_by<F: Fn(&T, &T) -> std::cmp::Ordering + Sync>(&mut self, cmp: F);
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIterMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParIterMut {
            chunks: self.chunks_mut(size).collect(),
        }
    }

    fn par_sort_unstable_by<F: Fn(&T, &T) -> std::cmp::Ordering + Sync>(&mut self, cmp: F) {
        // Sequential fallback: correctness over speed in the shim.
        self.sort_unstable_by(cmp);
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParIterMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParIterMut<'a, T> {
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        par_map_vec(self.chunks, f);
    }

    pub fn enumerate(self) -> ParIter<(usize, &'a mut [T])> {
        ParIter {
            items: self.chunks.into_iter().enumerate().collect(),
        }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_for_each_covers_everything() {
        let hits: Vec<std::sync::atomic::AtomicUsize> =
            (0..100).map(|_| std::sync::atomic::AtomicUsize::new(0)).collect();
        (0..100usize).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert!(hits
            .iter()
            .all(|h| h.load(std::sync::atomic::Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn chunks_map_sum() {
        let data: Vec<usize> = (0..997).collect();
        let total: usize = data
            .par_chunks(64)
            .map(|c| c.iter().sum::<usize>())
            .sum();
        assert_eq!(total, 997 * 996 / 2);
    }

    #[test]
    fn chunks_mut_enumerate_writes_disjoint() {
        let mut data = vec![0usize; 512];
        data.par_chunks_mut(8).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x = i;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i / 8);
        }
    }

    #[test]
    fn par_sort_sorts() {
        let mut v: Vec<u32> = (0..500).rev().collect();
        v.par_sort_unstable_by(|a, b| a.cmp(b));
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }
}
