//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `criterion` to this shim. Benchmarks compile and run with
//! `cargo bench`, reporting a simple best-of-samples wall-clock time per
//! benchmark — no warm-up modeling, outlier analysis, or HTML reports.

use std::fmt::Display;
use std::time::Instant;

/// Re-export position matches criterion's `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            samples: 20,
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            best_ns: f64::INFINITY,
        };
        f(&mut b);
        eprintln!("  {}/{id}: {}", self.name, fmt_ns(b.best_ns));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            best_ns: f64::INFINITY,
        };
        f(&mut b, input);
        eprintln!("  {}/{id}: {}", self.name, fmt_ns(b.best_ns));
        self
    }

    pub fn finish(&mut self) {}
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    best_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call to touch caches/allocations.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let ns = start.elapsed().as_nanos() as f64;
            if ns < self.best_ns {
                self.best_ns = ns;
            }
        }
    }
}

/// `function/parameter` display id for parameterized benchmarks.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_string()
    } else if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_finite_time() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut best = f64::NAN;
        g.bench_function("sum", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
            best = b.best_ns;
        });
        g.finish();
        assert!(best.is_finite() && best >= 0.0);
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_param() {
        assert_eq!(BenchmarkId::new("prepare", 32).to_string(), "prepare/32");
    }
}
