//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `proptest` to this shim. It keeps the *spirit* of property
//! testing — each `proptest!` test runs its body against `cases`
//! randomly generated inputs from composable [`strategy::Strategy`]
//! values — but does **no shrinking**: a failing case panics with the
//! plain assertion message. The per-test RNG is seeded from the test's
//! module path, so failures are reproducible run to run.

pub mod test_runner {
    /// Deterministic splitmix64 generator used to drive strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name so every run of a given test sees the
        /// same case sequence.
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Runner configuration; only the case count is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy: Sized {
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(
            self,
            f: F,
        ) -> FlatMap<Self, F> {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            f: F,
        ) -> Filter<Self, F> {
            Filter {
                inner: self,
                reason,
                f,
            }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 1000 draws in a row", self.reason);
        }
    }

    /// A strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (self.start as i128, self.end as i128);
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u128;
                    (lo + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    (lo + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start() <= self.end(), "empty range strategy");
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Full-domain generation for primitives, via [`any`].
    pub trait Arbitrary {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        /// Moderate finite values; full-bit-pattern floats (NaN, ±Inf,
        /// subnormals) are injected explicitly by the fault-injection
        /// suite instead.
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            (rng.next_f64() - 0.5) * 2e6
        }
    }

    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `any::<T>()` — a strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as the size argument of [`vec`]: a fixed length
    /// or a range of lengths.
    pub trait IntoSize {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSize for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSize for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl IntoSize for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start() <= self.end(), "empty size range");
            self.start() + (rng.next_u64() as usize) % (self.end() - self.start() + 1)
        }
    }

    pub struct VecStrategy<S, Z> {
        elem: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSize> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `elem`-generated values with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy, Z: IntoSize>(elem: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { elem, size }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                    )*
                    { $body }
                }
            }
        )*
    };
}

/// Assertion macros: identical to `assert!`-family in this shim (no
/// rejection bookkeeping, failures panic immediately).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec as pvec;
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..500 {
            let u = Strategy::new_value(&(2usize..=9), &mut rng);
            assert!((2..=9).contains(&u));
            let i = Strategy::new_value(&(-4i32..=4), &mut rng);
            assert!((-4..=4).contains(&i));
            let f = Strategy::new_value(&(-10.0f64..10.0), &mut rng);
            assert!((-10.0..10.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_follow_size() {
        let mut rng = TestRng::from_name("vec");
        let s = pvec(0usize..5, 3..=7);
        for _ in 0..100 {
            let v = Strategy::new_value(&s, &mut rng);
            assert!((3..=7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let fixed = pvec(any::<u32>(), 4usize);
        assert_eq!(Strategy::new_value(&fixed, &mut rng).len(), 4);
    }

    #[test]
    fn flat_map_and_filter_compose() {
        let mut rng = TestRng::from_name("compose");
        let s = (1usize..=4)
            .prop_flat_map(|n| pvec(0i32..10, n..=n))
            .prop_map(|v| v.iter().sum::<i32>())
            .prop_filter("nonzero", |&x| x != 0);
        for _ in 0..100 {
            assert_ne!(Strategy::new_value(&s, &mut rng), 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(x in 1usize..=100, v in pvec(any::<u64>(), 1..=8)) {
            prop_assert!(x >= 1 && x <= 100);
            prop_assert!(!v.is_empty() && v.len() <= 8);
        }
    }
}
