//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! Provides [`rngs::StdRng`] (a splitmix64 generator — statistically fine
//! for synthetic workload generation, *not* cryptographic), the
//! [`SeedableRng::seed_from_u64`] constructor, and [`Rng::gen`] for the
//! primitive types the workload generators draw.

/// Raw 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from an RNG (the `Standard` distribution of
/// real rand).
pub trait SampleStandard {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleStandard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level drawing interface, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Splitmix64: tiny, fast, passes BigCrush on 64-bit outputs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
