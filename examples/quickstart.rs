//! Quickstart: decompose a synthetic sparse tensor with STeF.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use stef_repro::prelude::*;

fn main() {
    // A 3-way sparse tensor with per-mode skew (hot users, flat items).
    let dims = [2_000usize, 3_000, 150];
    let nnz = 60_000;
    println!("generating {dims:?} tensor with {nnz} non-zeros…");
    let tensor = workloads::power_law_tensor(&dims, nnz, &[1.0, 0.3, 0.5], 7);

    // Inspect the structure the model will reason about.
    let stats = TensorStats::from_coo(&tensor);
    println!(
        "CSF mode order {:?}, fibers per level {:?}, root slices {} (imbalance {:.2}x)",
        stats.mode_order, stats.fiber_counts, stats.root_slices, stats.slice_imbalance
    );

    // Prepare STeF: the data-movement model chooses which partial MTTKRP
    // results to memoize and whether to swap the last two CSF modes.
    let rank = 16;
    let mut engine = Stef::prepare(&tensor, StefOptions::new(rank));
    let plan = engine.plan();
    println!(
        "model decision: swap last two modes = {}, memoized levels = {:?}",
        plan.swap_last_two,
        plan.save
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(l, _)| l)
            .collect::<Vec<_>>()
    );
    println!(
        "predicted data movement: {:.1} M elements/iteration (other order: {:.1} M)",
        plan.predicted / 1e6,
        plan.predicted_other_order / 1e6
    );

    // Run CPD-ALS.
    let mut opts = CpdOptions::new(rank);
    opts.max_iters = 30;
    let result = cpd_als(&mut engine, &opts).expect("decomposition failed");
    println!(
        "\nCPD rank-{rank}: fit {:.4} after {} iterations (converged: {})",
        result.final_fit(),
        result.iterations,
        result.converged
    );
    println!(
        "time: {:?} total, {:?} inside MTTKRP",
        result.total_time, result.mttkrp_time
    );
    println!("fit trajectory: {:?}", &result.fits);
    println!(
        "memoized partials use {:.2} MB (CSF + factors: {:.2} MB)",
        engine.partial_bytes() as f64 / 1e6,
        engine.csf_and_factor_bytes() as f64 / 1e6
    );
}
