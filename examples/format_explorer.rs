//! Format & model explorer: for one tensor (a suite analogue by name, or
//! any FROSTT `.tns` file), show what every storage/ordering choice
//! costs and what the data-movement model decides.
//!
//! ```text
//! cargo run --release --example format_explorer                # default tensor
//! cargo run --release --example format_explorer -- uber        # suite name
//! cargo run --release --example format_explorer -- path/to.tns # real data
//! ```

use sptensor::{count_fibers_if_last_two_swapped, sort_modes_by_length};
use stef::LevelProfile;
use stef_repro::prelude::*;

fn load_tensor(arg: Option<&str>) -> (String, CooTensor) {
    match arg {
        None => (
            "uber (suite analogue)".into(),
            workloads::suite_tensor("uber", workloads::SuiteScale::Small).unwrap(),
        ),
        Some(name) => {
            if let Some(t) = workloads::suite_tensor(name, workloads::SuiteScale::Small) {
                return (format!("{name} (suite analogue)"), t);
            }
            match sptensor::io::read_tns_file(name) {
                Ok(t) => (name.to_string(), t),
                Err(e) => {
                    eprintln!("'{name}' is neither a suite tensor nor a readable .tns file: {e}");
                    eprintln!("suite names:");
                    for s in workloads::paper_suite() {
                        eprintln!("  {}", s.name);
                    }
                    std::process::exit(1);
                }
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (label, tensor) = load_tensor(args.get(1).map(|s| s.as_str()));
    println!("tensor: {label}");
    println!("dims {:?}, nnz {}", tensor.dims(), tensor.nnz());

    let rank = 32;
    let cache = 16 << 20;
    let base_order = sort_modes_by_length(tensor.dims());

    // CSF in the heuristic order and its swap alternative (Algorithm 9).
    let csf = build_csf(&tensor, &base_order);
    println!(
        "\nCSF (mode order {base_order:?}): fibers per level {:?}, {:.2} MB",
        csf.fiber_counts(),
        csf.memory_bytes() as f64 / 1e6
    );
    let swapped_fibers = count_fibers_if_last_two_swapped(&csf);
    let d = csf.ndim();
    println!(
        "swapping the last two modes would change level-{} fibers: {} -> {}",
        d - 2,
        csf.nfibers(d - 2),
        swapped_fibers
    );

    // Model scores for every memoization subset, both orders.
    let base = LevelProfile::from_csf(&csf, rank, cache);
    let swapped = LevelProfile::swapped_from_csf(&csf, rank, cache);
    println!("\ndata-movement model (R={rank}, cache 16 MiB), traffic in M elements:");
    for (tag, profile) in [("base ", &base), ("swap ", &swapped)] {
        let memoizable: Vec<usize> = if d >= 3 {
            (1..=d - 2).collect()
        } else {
            vec![]
        };
        for mask in 0..(1u32 << memoizable.len()) {
            let mut save = vec![false; d];
            for (bit, &l) in memoizable.iter().enumerate() {
                save[l] = mask & (1 << bit) != 0;
            }
            let traffic = profile.total_traffic(&save);
            let saved: Vec<usize> = save
                .iter()
                .enumerate()
                .filter(|(_, &s)| s)
                .map(|(l, _)| l)
                .collect();
            println!("  {tag} save {saved:?}: {:>10.2}", traffic / 1e6);
        }
    }

    // What each engine's storage costs.
    println!("\nstorage comparison:");
    let alto = Alto::prepare(&tensor, rank, 0);
    println!(
        "  ALTO linearized:   {:>8.2} MB",
        alto.memory_bytes() as f64 / 1e6
    );
    for variant in [SplattVariant::One, SplattVariant::Two, SplattVariant::All] {
        let s = Splatt::prepare(&tensor, variant, rank, 0);
        println!(
            "  {:<18} {:>8.2} MB",
            format!("{}:", s.name()),
            s.csf_bytes() as f64 / 1e6
        );
    }
    let stef_engine = Stef::prepare(&tensor, StefOptions::new(rank));
    println!(
        "  stef CSF+partials: {:>8.2} MB (plan: swap={}, save={:?})",
        (stef_engine.csf().memory_bytes() + stef_engine.partial_bytes()) as f64 / 1e6,
        stef_engine.plan().swap_last_two,
        stef_engine.plan().save
    );
}
