//! Recommender-style scenario: factorizing a (user × movie × week)
//! ratings tensor that actually has low-rank structure, then reading the
//! taste groups out of the factors — the data-analytics use case the
//! paper's introduction motivates.
//!
//! ```text
//! cargo run --release --example movie_ratings
//! ```

use stef_repro::prelude::*;
use workloads::planted_lowrank_tensor;

fn main() {
    // 4 taste communities planted in a 5000-user, 2000-movie, 52-week
    // tensor; values are the exact CP model plus a little noise.
    let dims = [5_000usize, 2_000, 52];
    let rank_true = 4;
    let planted = planted_lowrank_tensor(&dims, 80_000, rank_true, 0.01, 123);
    let tensor = planted.tensor;
    println!(
        "ratings tensor: {} users x {} movies x {} weeks, {} observed ratings",
        dims[0],
        dims[1],
        dims[2],
        tensor.nnz()
    );

    let rank = 6; // slightly over-provisioned, as in practice
    let mut engine = Stef::prepare(&tensor, StefOptions::new(rank));
    let mut opts = CpdOptions::new(rank);
    opts.max_iters = 40;
    opts.tol = 1e-6;
    let result = cpd_als(&mut engine, &opts).expect("decomposition failed");
    println!(
        "rank-{rank} CPD: fit {:.4} in {} iterations ({:?})",
        result.final_fit(),
        result.iterations,
        result.total_time
    );

    // Interpret: top movies of the heaviest components.
    let mut comps: Vec<usize> = (0..rank).collect();
    comps.sort_by(|&a, &b| result.lambda[b].partial_cmp(&result.lambda[a]).unwrap());
    let movies = &result.factors[1];
    for &r in comps.iter().take(rank_true) {
        let mut scored: Vec<(usize, f64)> =
            (0..movies.rows()).map(|i| (i, movies[(i, r)])).collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let top: Vec<usize> = scored.iter().take(5).map(|&(i, _)| i).collect();
        println!(
            "component {r} (weight {:.2}): top movies {:?}",
            result.lambda[r], top
        );
    }

    // Sanity: with planted structure, the fit should be high.
    assert!(
        result.final_fit() > 0.7,
        "planted low-rank structure should be recoverable, fit = {}",
        result.final_fit()
    );
    println!("\nplanted ground truth had {rank_true} components — the fitted");
    println!("weights above should show ~{rank_true} dominant ones.");
}
