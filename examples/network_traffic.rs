//! Network-telemetry scenario: a VAST-like event tensor whose shortest
//! mode has only two values (e.g. protocol ∈ {tcp, udp}) and a heavy
//! hot/cold skew. Under the mode-length heuristic that mode becomes the
//! CSF *root*, so slice-parallel engines can use at most two threads —
//! the situation the paper's fine-grained scheduling (§II-D) fixes.
//!
//! ```text
//! cargo run --release --example network_traffic
//! ```

use std::time::Instant;
use stef_repro::prelude::*;

fn main() {
    // (src-ip, dst-ip, protocol, hour) events, 85% on one protocol.
    let spec = workloads::SuiteSpec {
        name: "traffic",
        dims: vec![40_000, 4_000, 2, 24],
        base_nnz: 120_000,
        kind: workloads::suite::GenKind::SplitRoot {
            hot_mode: 2,
            hot: 0.85,
            skews: vec![0.6, 0.6, 0.0, 0.2],
        },
        seed: 99,
    };
    let tensor = spec.generate(workloads::SuiteScale::Small);
    let stats = TensorStats::from_coo(&tensor);
    println!(
        "traffic tensor: dims {:?}, {} events, CSF root has {} slices \
         (imbalance {:.2}x)",
        tensor.dims(),
        tensor.nnz(),
        stats.root_slices,
        stats.slice_imbalance
    );

    let rank = 16;
    let reps = 3;
    let time_sweep = |engine: &mut dyn MttkrpEngine| {
        let factors = stef::init_factors(engine.dims(), rank, 5);
        let sweep = engine.sweep_order();
        for &m in &sweep {
            std::hint::black_box(engine.mttkrp(&factors, m)); // warm-up
        }
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            for &m in &sweep {
                std::hint::black_box(engine.mttkrp(&factors, m));
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };

    // STeF (nnz-balanced) vs its slice-scheduled ablation vs SPLATT.
    let mut stef_engine = Stef::prepare(&tensor, StefOptions::new(rank));
    let t_stef = time_sweep(&mut stef_engine);

    let mut slice_opts = StefOptions::new(rank);
    slice_opts.load_balance = LoadBalance::SliceBased;
    let mut slice_engine = Stef::prepare(&tensor, slice_opts);
    let t_slice = time_sweep(&mut slice_engine);

    let mut splatt = Splatt::prepare(&tensor, SplattVariant::One, rank, 0);
    let t_splatt = time_sweep(&mut splatt);

    println!(
        "\nMTTKRP sweep times ({} threads):",
        rayon::current_num_threads()
    );
    println!("  stef (nnz-balanced):      {:>8.2} ms", t_stef * 1e3);
    println!("  stef (slice-scheduled):   {:>8.2} ms", t_slice * 1e3);
    println!("  splatt-1 (slice):         {:>8.2} ms", t_splatt * 1e3);
    println!(
        "\nnnz balancing measures {:.2}x vs slice scheduling on this host\n\
         (the gap needs real cores to show in wall time — with a 2-slice\n\
         root, slice scheduling can keep at most 2 threads busy).",
        t_slice / t_stef
    );

    // The hardware-independent statement of the same fact: critical-path
    // speedup of each schedule at the paper's thread counts.
    let csf = sptensor::build_csf(
        &tensor,
        &sptensor::sort_modes_by_length(tensor.dims()),
    );
    for threads in [18usize, 64] {
        let nnzb = stef::Schedule::nnz_balanced(&csf, threads).simulated_speedup();
        let slice = stef::Schedule::slice_based(&csf, threads).simulated_speedup();
        println!(
            "  at T={threads}: simulated speedup {nnzb:.1}x (nnz-balanced) vs {slice:.1}x (slice)"
        );
    }

    // Full decomposition still works on this awkward structure.
    let result = cpd_als(&mut stef_engine, &CpdOptions::new(rank)).expect("decomposition failed");
    println!(
        "CPD fit {:.4} in {} iterations",
        result.final_fit(),
        result.iterations
    );
}
