//! Nonnegative factorization with locality reordering: a
//! (document × word × timestamp) activity tensor is renumbered with
//! Lexi-Order (Li et al., ICS'19 — discussed in the paper's §V as
//! complementary to STeF), then decomposed with nonnegative
//! multiplicative updates so the components read as additive topics.
//!
//! ```text
//! cargo run --release --example topic_activity
//! ```

use sptensor::reorder::{lexi_order, mean_index_jump};
use stef::{cpd_mu_nonneg, CpdOptions};
use stef_repro::prelude::*;

fn main() {
    // Clustered activity: a few dozen topic blocks in a big index space,
    // with the mode-1 (word) ids deliberately scattered.
    let dims = [3_000usize, 8_000, 200];
    let tensor = workloads::clustered_tensor(&dims, 80_000, 24, 40, 2024);
    println!(
        "activity tensor: {:?}, {} non-zeros (all values positive)",
        tensor.dims(),
        tensor.nnz()
    );

    // Locality before/after Lexi-Order.
    let before = mean_index_jump(&tensor);
    let (reordered, renumbering) = lexi_order(&tensor, 2);
    let after = mean_index_jump(&reordered);
    println!("mean index jump per mode (lower = better locality):");
    for m in 0..dims.len() {
        println!("  mode {m}: {:.1} -> {:.1}", before[m], after[m]);
    }

    // Nonnegative CP on the reordered tensor through the full STeF engine.
    let rank = 8;
    let mut engine = Stef::prepare(&reordered, StefOptions::new(rank));
    let mut opts = CpdOptions::new(rank);
    opts.max_iters = 40;
    opts.tol = 1e-6;
    let result = cpd_mu_nonneg(&mut engine, &opts);
    println!(
        "\nnonnegative CP rank-{rank}: fit {:.4} in {} iterations ({:?})",
        result.final_fit(),
        result.iterations,
        result.total_time
    );
    assert!(
        result
            .factors
            .iter()
            .all(|f| f.as_slice().iter().all(|&v| v >= 0.0)),
        "multiplicative updates must preserve nonnegativity"
    );

    // Map the word factor back to original ids and print a topic.
    let words = &result.factors[1];
    let rows: Vec<Vec<f64>> = (0..words.rows()).map(|i| words.row(i).to_vec()).collect();
    let words_original = renumbering.unapply_factor_rows(1, &rows);
    let topic = 0;
    let mut scored: Vec<(usize, f64)> = words_original
        .iter()
        .enumerate()
        .map(|(i, row)| (i, row[topic]))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let top: Vec<usize> = scored.iter().take(8).map(|&(i, _)| i).collect();
    println!("topic {topic}: top original word ids {top:?}");
    println!(
        "(factor rows were computed in Lexi-Order numbering and mapped back\n\
         through the renumbering — fiber counts, and hence the model's\n\
         decisions, are invariant under the reordering)"
    );
}
